// Shared helpers for the PathDump test suite.

#ifndef PATHDUMP_TESTS_TEST_UTIL_H_
#define PATHDUMP_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/cherrypick/codec.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace pathdump {
namespace testutil {

// Walks `path` (switch sequence) from src to dst, applying the CherryPick
// encoder at each hop exactly as a switch pipeline would, and returns the
// resulting (dscp, tags-in-push-order) trajectory header.
inline std::pair<LinkLabel, std::vector<LinkLabel>> EncodeAlongPath(
    const CherryPickCodec& codec, HostId src, HostId dst, const Path& path) {
  LinkLabel dscp = 0;
  std::vector<LinkLabel> tags;
  for (size_t i = 0; i < path.size(); ++i) {
    NodeId in = (i == 0) ? NodeId(src) : path[i - 1];
    NodeId out = (i + 1 < path.size()) ? path[i + 1] : NodeId(dst);
    TagAction act = codec.OnForward(path[i], in, out, dst, int(tags.size()), dscp);
    if (act.push_vlan) {
      tags.push_back(act.vlan);
    }
    if (act.set_dscp) {
      dscp = act.dscp;
    }
  }
  return {dscp, tags};
}

// A FiveTuple between two hosts with distinguishable ports.
inline FiveTuple MakeFlow(const Topology& topo, HostId src, HostId dst, uint16_t src_port = 10000,
                          uint16_t dst_port = 80, uint8_t proto = kProtoTcp) {
  FiveTuple t;
  t.src_ip = topo.IpOfHost(src);
  t.dst_ip = topo.IpOfHost(dst);
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.protocol = proto;
  return t;
}

// The paper's Fig. 9 scenario topology: a chain of switches S1..S6 with
// hosts A (at S1) and B (at S6); S2..S5 can be misconfigured into a loop.
//
//   A - S1 - S2 - S3 - S4 - S6 - B
//                  \    |
//                   \   |
//                    \  |
//                     S5
//
// Links: S1-S2, S2-S3, S3-S4, S4-S5, S5-S2, S4-S6 (S5 closes the loop).
struct LoopScenario {
  Topology topo;
  HostId host_a = kInvalidNode;
  HostId host_b = kInvalidNode;
  SwitchId s1, s2, s3, s4, s5, s6;
};

inline LoopScenario BuildLoopScenario() {
  LoopScenario sc;
  Topology& t = sc.topo;
  sc.s1 = t.AddSwitch(NodeRole::kTor, -1, 0, "S1");
  sc.s2 = t.AddSwitch(NodeRole::kAgg, -1, 1, "S2");
  sc.s3 = t.AddSwitch(NodeRole::kAgg, -1, 2, "S3");
  sc.s4 = t.AddSwitch(NodeRole::kAgg, -1, 3, "S4");
  sc.s5 = t.AddSwitch(NodeRole::kAgg, -1, 4, "S5");
  sc.s6 = t.AddSwitch(NodeRole::kTor, -1, 5, "S6");
  t.AddLink(sc.s1, sc.s2);
  t.AddLink(sc.s2, sc.s3);
  t.AddLink(sc.s3, sc.s4);
  t.AddLink(sc.s4, sc.s5);
  t.AddLink(sc.s5, sc.s2);
  t.AddLink(sc.s4, sc.s6);
  sc.host_a = t.AddHost(-1, 0, "A");
  t.AddLink(sc.host_a, sc.s1);
  sc.host_b = t.AddHost(-1, 1, "B");
  t.AddLink(sc.host_b, sc.s6);
  return sc;
}

}  // namespace testutil
}  // namespace pathdump

#endif  // PATHDUMP_TESTS_TEST_UTIL_H_
