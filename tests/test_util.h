// Shared helpers for the PathDump test suite.

#ifndef PATHDUMP_TESTS_TEST_UTIL_H_
#define PATHDUMP_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/cherrypick/codec.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/edge/tib.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace pathdump {
namespace testutil {

// --- Synthetic TIB record fixtures ---
//
// One definition for the record streams the shard/standing/channel tests
// and the query benches all feed their TIBs — the per-file copies used to
// drift apart one field at a time.  Streams are reproducible: a given
// (seed, options) pair always yields the same records, and each record
// consumes a fixed number of rng draws.

struct SyntheticRecordOptions {
  // Low bits of src/dst IPs are drawn from [0, ip_space).
  uint32_t ip_space = 4096;
  // Path switches are drawn from [0, switch_space), path length 3..5.
  uint32_t switch_space = 24;
};

// `n` random TIB records from `seed`: random flows, random short paths,
// uniform sizes — topology-agnostic (paths need not exist anywhere).
inline std::vector<TibRecord> MakeSyntheticRecords(int n, uint32_t seed,
                                                   SyntheticRecordOptions opt = {}) {
  Rng rng(seed);
  std::vector<TibRecord> out;
  out.reserve(size_t(n));
  for (int i = 0; i < n; ++i) {
    TibRecord rec;
    rec.flow.src_ip = kHostIpBase | rng.UniformInt(opt.ip_space);
    rec.flow.dst_ip = kHostIpBase | rng.UniformInt(opt.ip_space);
    rec.flow.src_port = uint16_t(1024 + rng.UniformInt(20000));
    rec.flow.dst_port = uint16_t(80 + rng.UniformInt(8));
    rec.flow.protocol = kProtoTcp;
    Path p;
    int len = 3 + int(rng.UniformInt(3));
    for (int j = 0; j < len; ++j) {
      p.push_back(SwitchId(rng.UniformInt(opt.switch_space)));
    }
    rec.path = CompactPath::FromPath(p);
    rec.stime = SimTime(rng.UniformInt(3600)) * kNsPerSec;
    rec.etime = rec.stime + SimTime(rng.UniformInt(5000)) * kNsPerMs;
    rec.bytes = 100 + rng.UniformInt(1000000);
    rec.pkts = uint32_t(rec.bytes / 1460 + 1);
    out.push_back(rec);
  }
  return out;
}

// One synthetic TIB entry terminating at `host` (agent index `a` of the
// queried population): random remote source, one of its real ECMP paths,
// heavy-tailed size.  The topology-aware sibling of MakeSyntheticRecords,
// shared with bench/query_bench_common.h.  Consumes a fixed number of
// rng draws so record streams are reproducible wherever the same seed is
// used.
inline TibRecord MakeEcmpRecord(const Topology& topo, const Router& router, size_t a,
                                HostId host, int e, Rng& rng) {
  const std::vector<HostId>& all_hosts = topo.hosts();
  HostId src = all_hosts[rng.UniformInt(uint32_t(all_hosts.size()))];
  if (src == host) {
    src = all_hosts[(a + 1) % all_hosts.size()];
  }
  std::vector<Path> paths = router.EcmpPaths(src, host);
  const Path& path = paths[rng.UniformInt(uint32_t(paths.size()))];

  TibRecord rec;
  rec.flow.src_ip = topo.IpOfHost(src);
  rec.flow.dst_ip = topo.IpOfHost(host);
  rec.flow.src_port = uint16_t(1024 + (e & 0xFFFF) % 60000);
  rec.flow.dst_port = uint16_t(80 + (e >> 16));
  rec.flow.protocol = kProtoTcp;
  rec.path = CompactPath::FromPath(path);
  rec.stime = SimTime(rng.UniformInt(3600)) * kNsPerSec;
  rec.etime = rec.stime + SimTime(rng.UniformInt(5000)) * kNsPerMs;
  rec.bytes = uint64_t(rng.Pareto(1000.0, 1.3));
  rec.pkts = uint32_t(rec.bytes / 1460 + 1);
  return rec;
}

// Walks `path` (switch sequence) from src to dst, applying the CherryPick
// encoder at each hop exactly as a switch pipeline would, and returns the
// resulting (dscp, tags-in-push-order) trajectory header.
inline std::pair<LinkLabel, std::vector<LinkLabel>> EncodeAlongPath(
    const CherryPickCodec& codec, HostId src, HostId dst, const Path& path) {
  LinkLabel dscp = 0;
  std::vector<LinkLabel> tags;
  for (size_t i = 0; i < path.size(); ++i) {
    NodeId in = (i == 0) ? NodeId(src) : path[i - 1];
    NodeId out = (i + 1 < path.size()) ? path[i + 1] : NodeId(dst);
    TagAction act = codec.OnForward(path[i], in, out, dst, int(tags.size()), dscp);
    if (act.push_vlan) {
      tags.push_back(act.vlan);
    }
    if (act.set_dscp) {
      dscp = act.dscp;
    }
  }
  return {dscp, tags};
}

// A FiveTuple between two hosts with distinguishable ports.
inline FiveTuple MakeFlow(const Topology& topo, HostId src, HostId dst, uint16_t src_port = 10000,
                          uint16_t dst_port = 80, uint8_t proto = kProtoTcp) {
  FiveTuple t;
  t.src_ip = topo.IpOfHost(src);
  t.dst_ip = topo.IpOfHost(dst);
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.protocol = proto;
  return t;
}

// The paper's Fig. 9 scenario topology: a chain of switches S1..S6 with
// hosts A (at S1) and B (at S6); S2..S5 can be misconfigured into a loop.
//
//   A - S1 - S2 - S3 - S4 - S6 - B
//                  \    |
//                   \   |
//                    \  |
//                     S5
//
// Links: S1-S2, S2-S3, S3-S4, S4-S5, S5-S2, S4-S6 (S5 closes the loop).
struct LoopScenario {
  Topology topo;
  HostId host_a = kInvalidNode;
  HostId host_b = kInvalidNode;
  SwitchId s1, s2, s3, s4, s5, s6;
};

inline LoopScenario BuildLoopScenario() {
  LoopScenario sc;
  Topology& t = sc.topo;
  sc.s1 = t.AddSwitch(NodeRole::kTor, -1, 0, "S1");
  sc.s2 = t.AddSwitch(NodeRole::kAgg, -1, 1, "S2");
  sc.s3 = t.AddSwitch(NodeRole::kAgg, -1, 2, "S3");
  sc.s4 = t.AddSwitch(NodeRole::kAgg, -1, 3, "S4");
  sc.s5 = t.AddSwitch(NodeRole::kAgg, -1, 4, "S5");
  sc.s6 = t.AddSwitch(NodeRole::kTor, -1, 5, "S6");
  t.AddLink(sc.s1, sc.s2);
  t.AddLink(sc.s2, sc.s3);
  t.AddLink(sc.s3, sc.s4);
  t.AddLink(sc.s4, sc.s5);
  t.AddLink(sc.s5, sc.s2);
  t.AddLink(sc.s4, sc.s6);
  sc.host_a = t.AddHost(-1, 0, "A");
  t.AddLink(sc.host_a, sc.s1);
  sc.host_b = t.AddHost(-1, 1, "B");
  t.AddLink(sc.host_b, sc.s6);
  return sc;
}

}  // namespace testutil
}  // namespace pathdump

#endif  // PATHDUMP_TESTS_TEST_UTIL_H_
