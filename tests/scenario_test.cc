// Larger-topology scenario sweeps for the debugging applications, plus
// stress/robustness checks on the simulation substrate.

#include <gtest/gtest.h>

#include "src/apps/blackhole.h"
#include "src/apps/silent_drop.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Silent-drop localization across topology sizes ---

class SilentDropScale : public ::testing::TestWithParam<int> {};

TEST_P(SilentDropScale, LocalizesOnBiggerFabrics) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());
  SilentDropDebugger debugger(&controller, &fleet);
  debugger.Start();

  const FatTreeMeta& m = *topo.fat_tree();
  // Fault on an agg->core uplink in pod 1 (agg index 1's first core).
  NodeId agg = m.agg[1][1];
  NodeId core = m.core[size_t(1 * (k / 2))];
  FluidConfig cfg;
  cfg.seed = uint64_t(k);
  FluidSimulation fluid(&topo, &router, cfg);
  fluid.AddSilentDrop(agg, core, 0.03);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 10;
  params.duration = 15 * kNsPerSec;
  params.seed = uint64_t(k) * 3 + 1;
  fluid.Run(gen.Generate(params), &fleet, controller.MakeAlarmSink());

  ASSERT_GT(debugger.signature_count(), 0u) << "fault never exercised";
  auto acc = debugger.Accuracy({{agg, core}});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, SilentDropScale, ::testing::Values(4, 6, 8));

// --- Blackhole diagnosis scales: candidate sets stay small ---

class BlackholeScale : public ::testing::TestWithParam<int> {};

TEST_P(BlackholeScale, CandidateSetStaysConstantWhilePathsGrow) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];
  EdgeAgent agent(dst, &topo, &codec);
  FiveTuple flow = testutil::MakeFlow(topo, src, dst);

  std::vector<Path> all = router.EcmpPaths(src, dst);
  size_t expected_paths = size_t(k / 2) * size_t(k / 2);
  ASSERT_EQ(all.size(), expected_paths);
  // One agg-core blackhole kills exactly one subflow.
  for (size_t i = 1; i < all.size(); ++i) {
    TibRecord rec;
    rec.flow = flow;
    rec.path = CompactPath::FromPath(all[i]);
    rec.stime = 0;
    rec.etime = 100;
    rec.bytes = 10000;
    rec.pkts = 7;
    agent.IngestRecord(rec, 100);
  }
  BlackholeDiagnosis d = DiagnoseBlackhole(router, agent, flow, src, dst, TimeRange::All());
  ASSERT_EQ(d.missing.size(), 1u);
  // The search-space reduction is the point: 3 candidates no matter how
  // many equal-cost paths the fabric has (the paper's 3-of-10 at k=4).
  EXPECT_EQ(d.candidates.size(), 3u) << "k=" << k << " paths=" << expected_paths;
  EXPECT_EQ(d.refined_candidates.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Ks, BlackholeScale, ::testing::Values(4, 6, 8));

// --- Agent wildcard semantics through the full API ---

TEST(WildcardSemantics, OutgoingLinkQuery) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Router router(&topo);
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  EdgeAgent agent(dst, &topo, &codec);

  Path p = router.EcmpPaths(src, dst)[0];
  TibRecord rec;
  rec.flow = testutil::MakeFlow(topo, src, dst);
  rec.path = CompactPath::FromPath(p);
  rec.stime = 0;
  rec.etime = 100;
  rec.bytes = 1;
  rec.pkts = 1;
  agent.IngestRecord(rec, 100);

  // (Si, ?) matches every switch with an outgoing hop; the last switch of
  // the path has none.
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_EQ(agent.GetFlows(LinkId{p[i], kInvalidNode}, TimeRange::All()).size(), 1u);
  }
  EXPECT_TRUE(agent.GetFlows(LinkId{p.back(), kInvalidNode}, TimeRange::All()).empty());
  // (?, Sj): everything but the first switch.
  EXPECT_TRUE(agent.GetFlows(LinkId{kInvalidNode, p.front()}, TimeRange::All()).empty());
  for (size_t i = 1; i < p.size(); ++i) {
    EXPECT_EQ(agent.GetFlows(LinkId{kInvalidNode, p[i]}, TimeRange::All()).size(), 1u);
  }
}

// --- Substrate stress ---

TEST(EventQueueStress, HundredThousandInterleavedEvents) {
  EventQueue q;
  Rng rng(3);
  int64_t fired = 0;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 100000; ++i) {
    q.Schedule(SimTime(rng.UniformInt(1000000)), [&, i] {
      ++fired;
      if (q.now() < last) {
        monotone = false;
      }
      last = q.now();
      if (i % 1000 == 0) {
        q.ScheduleAfter(1, [&] { ++fired; });
      }
    });
  }
  q.RunAll();
  EXPECT_EQ(fired, 100000 + 100);
  EXPECT_TRUE(monotone) << "event clock must never go backwards";
}

TEST(NetworkStress, ManyConcurrentFlowsAllDecode) {
  Topology topo = BuildFatTree(6);
  Network net(&topo, NetworkConfig{});
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);

  Rng rng(8);
  const auto& hosts = topo.hosts();
  int injected = 0;
  for (int i = 0; i < 5000; ++i) {
    HostId src = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    HostId dst = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    if (src == dst) {
      continue;
    }
    Packet p;
    p.flow = testutil::MakeFlow(topo, src, dst, uint16_t(1024 + i % 60000));
    p.src_host = src;
    p.dst_host = dst;
    p.fin = true;
    net.InjectPacket(p, SimTime(i) * kNsPerUs);
    ++injected;
  }
  net.events().RunAll();
  fleet.FlushAll(net.events().now());

  uint64_t failures = 0;
  size_t records = 0;
  for (EdgeAgent* a : fleet.all()) {
    failures += a->decode_failures();
    records += a->tib().size();
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(records, size_t(injected));
  EXPECT_EQ(net.stats().delivered, uint64_t(injected));
}

TEST(SwitchCounters, ConservationAcrossTheFabric) {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.flow = testutil::MakeFlow(topo, src, dst, uint16_t(2000 + i));
    p.src_host = src;
    p.dst_host = dst;
    net.InjectPacket(p, SimTime(i) * kNsPerUs);
  }
  net.events().RunAll();

  uint64_t delivered = 0;
  uint64_t forwarded = 0;
  for (SwitchId sw : topo.switches()) {
    const SwitchCounters& c = net.switch_at(sw).counters();
    delivered += c.delivered;
    forwarded += c.forwarded;
  }
  EXPECT_EQ(delivered, uint64_t(n)) << "exactly one switch delivers each packet";
  // Inter-pod 5-switch path: 4 forward operations + 1 delivery per packet.
  EXPECT_EQ(forwarded, uint64_t(n) * 4u);
}

}  // namespace
}  // namespace pathdump
