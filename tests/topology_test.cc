#include <gtest/gtest.h>

#include <set>

#include "src/topology/fat_tree.h"
#include "src/topology/topology.h"
#include "src/topology/vl2.h"

namespace pathdump {
namespace {

class FatTreeStructure : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeStructure, NodeCounts) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  int half = k / 2;
  const FatTreeMeta& m = *topo.fat_tree();

  EXPECT_EQ(m.k, k);
  EXPECT_EQ(int(m.core.size()), half * half);
  EXPECT_EQ(int(m.tor.size()), k);
  EXPECT_EQ(int(m.agg.size()), k);
  for (int p = 0; p < k; ++p) {
    EXPECT_EQ(int(m.tor[size_t(p)].size()), half);
    EXPECT_EQ(int(m.agg[size_t(p)].size()), half);
  }
  // k^3/4 hosts total.
  EXPECT_EQ(int(topo.hosts().size()), k * k * k / 4);
  // Switches: k^2/4 cores + k*k/2 tors + k*k/2 aggs... = 5k^2/4.
  EXPECT_EQ(int(topo.switches().size()), 5 * k * k / 4);
}

TEST_P(FatTreeStructure, Degrees) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  for (SwitchId sw : topo.switches()) {
    // Every switch in a fat-tree has exactly k ports used.
    EXPECT_EQ(int(topo.NeighborsOf(sw).size()), k) << topo.NameOf(sw);
  }
  for (HostId h : topo.hosts()) {
    EXPECT_EQ(topo.NeighborsOf(h).size(), 1u);
  }
}

TEST_P(FatTreeStructure, CoreWiring) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  int half = k / 2;
  const FatTreeMeta& m = *topo.fat_tree();
  // Core c connects to agg index c/half in every pod.
  for (int c = 0; c < half * half; ++c) {
    NodeId core = m.core[size_t(c)];
    int group = c / half;
    for (int p = 0; p < k; ++p) {
      EXPECT_TRUE(topo.Adjacent(core, m.agg[size_t(p)][size_t(group)]));
    }
    EXPECT_EQ(fat_tree::GroupOfCore(topo, core), group);
  }
}

TEST_P(FatTreeStructure, PodWiring) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  int half = k / 2;
  const FatTreeMeta& m = *topo.fat_tree();
  for (int p = 0; p < k; ++p) {
    for (int t = 0; t < half; ++t) {
      for (int a = 0; a < half; ++a) {
        EXPECT_TRUE(topo.Adjacent(m.tor[size_t(p)][size_t(t)], m.agg[size_t(p)][size_t(a)]));
      }
      EXPECT_EQ(int(topo.HostsOfTor(m.tor[size_t(p)][size_t(t)]).size()), half);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeStructure, ::testing::Values(4, 6, 8));

TEST(TopologyTest, IpMapping) {
  Topology topo = BuildFatTree(4);
  for (HostId h : topo.hosts()) {
    IpAddr ip = topo.IpOfHost(h);
    EXPECT_EQ(topo.HostOfIp(ip), h);
  }
  EXPECT_EQ(topo.HostOfIp(0x0B000001), kInvalidNode);           // wrong prefix
  EXPECT_EQ(topo.HostOfIp(kHostIpBase | 0xFFFFFF), kInvalidNode);  // out of range
  // A switch NodeId is not a host.
  EXPECT_EQ(topo.HostOfIp(kHostIpBase | topo.switches()[0]), kInvalidNode);
}

TEST(TopologyTest, Layers) {
  Topology topo = BuildFatTree(4);
  const FatTreeMeta& m = *topo.fat_tree();
  NodeId core = m.core[0];
  NodeId agg = m.agg[0][0];
  NodeId tor = m.tor[0][0];
  HostId host = topo.hosts()[0];
  EXPECT_TRUE(topo.IsAbove(core, agg));
  EXPECT_TRUE(topo.IsAbove(agg, tor));
  EXPECT_TRUE(topo.IsAbove(tor, host));
  EXPECT_FALSE(topo.IsAbove(tor, core));
  EXPECT_EQ(topo.LayerOf(host), 0);
  EXPECT_EQ(topo.LayerOf(core), 3);
}

TEST(TopologyTest, PortsAreStable) {
  Topology topo = BuildFatTree(4);
  // PortTo is the index into the neighbor list and is symmetric-consistent.
  const FatTreeMeta& m = *topo.fat_tree();
  NodeId tor = m.tor[0][0];
  NodeId agg = m.agg[0][0];
  int p = topo.PortTo(tor, agg);
  ASSERT_GE(p, 0);
  EXPECT_EQ(topo.NeighborsOf(tor)[size_t(p)], agg);
  EXPECT_EQ(topo.PortTo(tor, m.core[0]), -1);  // not adjacent
}

TEST(TopologyTest, TorOfHostConsistent) {
  Topology topo = BuildFatTree(6);
  for (HostId h : topo.hosts()) {
    SwitchId tor = topo.TorOfHost(h);
    EXPECT_EQ(topo.RoleOf(tor), NodeRole::kTor);
    auto hosts = topo.HostsOfTor(tor);
    EXPECT_NE(std::find(hosts.begin(), hosts.end(), h), hosts.end());
  }
}

TEST(TopologyTest, LinkEnumeration) {
  Topology topo = BuildFatTree(4);
  // FatTree(4): 48 switch-switch links (16 tor-agg per... ) + 16 host links.
  // tor-agg: k pods * half*half = 4*4 = 16; agg-core: 4*4 = 16; hosts: 16.
  EXPECT_EQ(topo.AllUndirectedLinks().size(), 48u);
  EXPECT_EQ(topo.AllDirectedLinks().size(), 96u);
  EXPECT_EQ(topo.link_count(), 48u);
}

TEST(Vl2Test, Structure) {
  Topology topo = BuildVl2(/*num_tors=*/8, /*num_aggs=*/4, /*num_intermediates=*/3,
                           /*hosts_per_tor=*/2);
  const Vl2Meta& m = *topo.vl2();
  EXPECT_EQ(int(m.tor.size()), 8);
  EXPECT_EQ(int(m.agg.size()), 4);
  EXPECT_EQ(int(m.intermediate.size()), 3);
  EXPECT_EQ(topo.hosts().size(), 16u);
  // Every agg connects to every intermediate.
  for (NodeId a : m.agg) {
    for (NodeId i : m.intermediate) {
      EXPECT_TRUE(topo.Adjacent(a, i));
    }
  }
  // Every ToR has exactly two uplinks.
  for (NodeId t : m.tor) {
    auto [a0, a1] = vl2::AggsOfTor(topo, t);
    EXPECT_TRUE(topo.Adjacent(t, a0));
    EXPECT_TRUE(topo.Adjacent(t, a1));
    EXPECT_NE(a0, a1);
  }
}

TEST(GenericTopologyTest, HandBuilt) {
  Topology t;
  SwitchId s1 = t.AddSwitch(NodeRole::kTor);
  SwitchId s2 = t.AddSwitch(NodeRole::kAgg);
  HostId h = t.AddHost();
  t.AddLink(s1, s2);
  t.AddLink(h, s1);
  EXPECT_EQ(t.kind(), TopologyKind::kGeneric);
  EXPECT_EQ(t.TorOfHost(h), s1);
  EXPECT_TRUE(t.Adjacent(s1, s2));
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.NameOf(s1), "tor0");
}

}  // namespace
}  // namespace pathdump
