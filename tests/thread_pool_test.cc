// Tests for the shared ThreadPool (src/common/thread_pool.h): every
// index runs exactly once, single-worker pools run inline on the
// caller, batches drain fully even when tasks throw, and the pool is
// reusable across batches.  Determinism of the controller's parallel
// query fan-out built on top of it is covered separately in
// tests/controller_parallel_test.cc.

#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pathdump {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(64, [&](size_t) {
    if (std::this_thread::get_id() != caller) {
      all_inline = false;
    }
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  ThreadPool pool(16);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(3, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, RethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 7) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // Items are never skipped: the batch still drains fully.
  EXPECT_EQ(ran.load(), 100u);
  // The pool stays usable afterwards.
  std::atomic<size_t> after{0};
  pool.ParallelFor(10, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10u);
}

}  // namespace
}  // namespace pathdump
