#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/topology/vl2.h"

namespace pathdump {
namespace {

class FatTreeLabels : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeLabels, AggCoreLabelsEqualCoreIndex) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  int half = k / 2;
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        NodeId agg = m.agg[size_t(p)][size_t(a)];
        NodeId core = m.core[size_t(a * half + j)];
        EXPECT_EQ(labels.LabelOf(agg, core), LinkLabel(a * half + j));
        // Symmetric (undirected labels).
        EXPECT_EQ(labels.LabelOf(core, agg), labels.LabelOf(agg, core));
      }
    }
  }
}

TEST_P(FatTreeLabels, LabelsReusedAcrossPodsButUniqueWithinPod) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  int half = k / 2;

  // Within a pod, all tor-agg and agg-core labels are distinct.
  for (int p = 0; p < k; ++p) {
    std::set<LinkLabel> seen;
    for (int t = 0; t < half; ++t) {
      for (int a = 0; a < half; ++a) {
        LinkLabel l = labels.LabelOf(m.tor[size_t(p)][size_t(t)], m.agg[size_t(p)][size_t(a)]);
        ASSERT_NE(l, kInvalidLabel);
        EXPECT_TRUE(seen.insert(l).second) << "duplicate tor-agg label in pod";
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        LinkLabel l =
            labels.LabelOf(m.agg[size_t(p)][size_t(a)], m.core[size_t(a * half + j)]);
        EXPECT_TRUE(seen.insert(l).second) << "agg-core label collides with tor-agg";
      }
    }
  }
  // Across pods, corresponding links share labels (the CherryPick reuse).
  if (k >= 4) {
    LinkLabel pod0 = labels.LabelOf(m.tor[0][0], m.agg[0][1]);
    LinkLabel pod1 = labels.LabelOf(m.tor[1][0], m.agg[1][1]);
    EXPECT_EQ(pod0, pod1);
  }
}

TEST_P(FatTreeLabels, TotalLabelSpaceFits12Bits) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  for (const LinkId& l : topo.AllUndirectedLinks()) {
    LinkLabel label = labels.LabelOf(l.src, l.dst);
    if (label != kInvalidLabel) {
      EXPECT_LE(label, kMaxVlanLabel);
    }
  }
}

TEST_P(FatTreeLabels, ParseInvertsLabels) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  const FatTreeMeta& m = *topo.fat_tree();
  int half = k / 2;

  for (int a = 0; a < half; ++a) {
    for (int j = 0; j < half; ++j) {
      LinkLabel l = labels.LabelOf(m.agg[0][size_t(a)], m.core[size_t(a * half + j)]);
      auto parsed = labels.ParseFatTree(l);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->type, FatTreeLabelType::kAggCore);
      EXPECT_EQ(parsed->core_index, a * half + j);
      EXPECT_EQ(parsed->agg_index, a);
    }
  }
  for (int t = 0; t < half; ++t) {
    for (int a = 0; a < half; ++a) {
      LinkLabel l = labels.LabelOf(m.tor[2 % k][size_t(t)], m.agg[2 % k][size_t(a)]);
      auto parsed = labels.ParseFatTree(l);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->type, FatTreeLabelType::kTorAgg);
      EXPECT_EQ(parsed->tor_index, t);
      EXPECT_EQ(parsed->agg_index, a);
    }
  }
  EXPECT_FALSE(labels.ParseFatTree(kInvalidLabel).has_value());
  EXPECT_FALSE(labels.ParseFatTree(LinkLabel(2 * half * half)).has_value());
}

TEST_P(FatTreeLabels, HostLinksCarryNoLabel) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  HostId h = topo.hosts()[0];
  EXPECT_EQ(labels.LabelOf(h, topo.TorOfHost(h)), kInvalidLabel);
}

INSTANTIATE_TEST_SUITE_P(Ks, FatTreeLabels, ::testing::Values(4, 6, 8));

TEST(Vl2Labels, AggIntermediateUnique) {
  Topology topo = BuildVl2(8, 4, 3, 2);
  LinkLabelMap labels(&topo);
  const Vl2Meta& m = *topo.vl2();
  std::set<LinkLabel> seen;
  for (NodeId a : m.agg) {
    for (NodeId i : m.intermediate) {
      LinkLabel l = labels.LabelOf(a, i);
      ASSERT_NE(l, kInvalidLabel);
      EXPECT_TRUE(seen.insert(l).second);
    }
  }
  EXPECT_EQ(seen.size(), size_t(4 * 3));
}

TEST(Vl2Labels, DscpEncoding) {
  Topology topo = BuildVl2(4, 4, 2, 1);
  LinkLabelMap labels(&topo);
  EXPECT_EQ(labels.DscpLabelOfUplink(0), 1);
  EXPECT_EQ(labels.DscpLabelOfUplink(1), 2);
  EXPECT_EQ(labels.UplinkIndexOfDscp(0), -1);  // unused
  EXPECT_EQ(labels.UplinkIndexOfDscp(1), 0);
  EXPECT_EQ(labels.UplinkIndexOfDscp(2), 1);
  // DSCP labels fit 6 bits.
  EXPECT_LE(labels.DscpLabelOfUplink(1), kMaxDscpLabel);
}

TEST(Vl2Labels, TorAggRidesDscpNotVlan) {
  Topology topo = BuildVl2(4, 4, 2, 1);
  LinkLabelMap labels(&topo);
  const Vl2Meta& m = *topo.vl2();
  auto [a0, a1] = vl2::AggsOfTor(topo, m.tor[0]);
  EXPECT_EQ(labels.LabelOf(m.tor[0], a0), kInvalidLabel);
}

TEST(GenericLabels, UniqueAndReversible) {
  Topology t;
  SwitchId s1 = t.AddSwitch(NodeRole::kTor);
  SwitchId s2 = t.AddSwitch(NodeRole::kAgg);
  SwitchId s3 = t.AddSwitch(NodeRole::kAgg);
  HostId h = t.AddHost();
  t.AddLink(s1, s2);
  t.AddLink(s2, s3);
  t.AddLink(s1, s3);
  t.AddLink(h, s1);
  LinkLabelMap labels(&t);

  std::set<LinkLabel> seen;
  for (const LinkId& l : t.AllUndirectedLinks()) {
    if (t.IsHost(l.src) || t.IsHost(l.dst)) {
      EXPECT_EQ(labels.LabelOf(l.src, l.dst), kInvalidLabel);
      continue;
    }
    LinkLabel lab = labels.LabelOf(l.src, l.dst);
    ASSERT_NE(lab, kInvalidLabel);
    EXPECT_TRUE(seen.insert(lab).second);
    auto endpoints = labels.GenericEndpoints(lab);
    ASSERT_TRUE(endpoints.has_value());
    EXPECT_TRUE((endpoints->first == l.src && endpoints->second == l.dst) ||
                (endpoints->first == l.dst && endpoints->second == l.src));
  }
  EXPECT_FALSE(labels.GenericEndpoints(999).has_value());
}

}  // namespace
}  // namespace pathdump
