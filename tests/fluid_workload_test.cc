#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Workload ---

TEST(FlowSizeTest, WebSearchShape) {
  WebSearchFlowSizes sizes;
  Rng rng(1);
  Cdf cdf;
  for (int i = 0; i < 20000; ++i) {
    cdf.Add(double(sizes.Sample(rng)));
  }
  // Heavy-tailed: median well under the mean; spread spans 1 KB..20 MB.
  double median = cdf.Quantile(0.5);
  EXPECT_LT(median, sizes.MeanBytes());
  EXPECT_GT(cdf.Quantile(0.99), 5e6);
  EXPECT_LT(cdf.Quantile(0.05), 10e3);
  // Sampled mean tracks the analytic mean.
  Summary s;
  Rng rng2(2);
  for (int i = 0; i < 50000; ++i) {
    s.Add(double(sizes.Sample(rng2)));
  }
  EXPECT_NEAR(s.mean() / sizes.MeanBytes(), 1.0, 0.1);
}

TEST(FlowSizeTest, FixedAndPareto) {
  FixedFlowSizes fixed(4242);
  Rng rng(1);
  EXPECT_EQ(fixed.Sample(rng), 4242u);
  EXPECT_EQ(fixed.MeanBytes(), 4242.0);

  ParetoFlowSizes pareto(1000, 2.0);
  Summary s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(double(pareto.Sample(rng)));
  }
  EXPECT_GE(s.min(), 1000.0);
  EXPECT_NEAR(s.mean(), pareto.MeanBytes(), 200.0);
}

TEST(TrafficGenTest, PoissonArrivalsSortedAndValid) {
  Topology topo = BuildFatTree(4);
  FixedFlowSizes sizes(10000);
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 50;
  params.duration = 5 * kNsPerSec;
  params.seed = 9;
  auto flows = gen.Generate(params);

  // Expected count ~ 16 hosts * 50/s * 5s = 4000.
  EXPECT_NEAR(double(flows.size()), 4000.0, 400.0);
  for (size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].start, flows[i - 1].start);
  }
  for (const FlowDesc& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_EQ(topo.HostOfIp(f.tuple.src_ip), f.src);
    EXPECT_EQ(topo.HostOfIp(f.tuple.dst_ip), f.dst);
    EXPECT_LT(f.start, params.duration);
  }
}

TEST(TrafficGenTest, InterPodPolicy) {
  Topology topo = BuildFatTree(4);
  FixedFlowSizes sizes(1000);
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 20;
  params.duration = 2 * kNsPerSec;
  params.dst_policy = DstPolicy::kInterPod;
  auto flows = gen.Generate(params);
  ASSERT_FALSE(flows.empty());
  for (const FlowDesc& f : flows) {
    EXPECT_NE(topo.node(topo.TorOfHost(f.src)).pod, topo.node(topo.TorOfHost(f.dst)).pod);
  }
}

TEST(TrafficGenTest, FixedDstPolicy) {
  Topology topo = BuildFatTree(4);
  FixedFlowSizes sizes(1000);
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 5;
  params.duration = kNsPerSec;
  params.dst_policy = DstPolicy::kFixed;
  params.fixed_dst = topo.hosts().back();
  params.sources = {topo.hosts()[0], topo.hosts()[1]};
  auto flows = gen.Generate(params);
  ASSERT_FALSE(flows.empty());
  for (const FlowDesc& f : flows) {
    EXPECT_EQ(f.dst, topo.hosts().back());
  }
}

TEST(TrafficGenTest, RateForLoadCalibration) {
  Topology topo = BuildFatTree(4);
  FixedFlowSizes sizes(125000);  // 1 Mbit per flow
  TrafficGenerator gen(&topo, &sizes);
  // 70% of 1 Gbps = 700 Mbps -> 700 flows/s.
  EXPECT_NEAR(gen.RateForLoad(0.7, 1e9), 700.0, 1.0);
}

// --- Fluid engine ---

class FluidFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    router_ = std::make_unique<Router>(&topo_);
    labels_ = std::make_unique<LinkLabelMap>(&topo_);
    codec_ = std::make_unique<CherryPickCodec>(&topo_, labels_.get());
    fleet_ = std::make_unique<AgentFleet>(&topo_, codec_.get());
  }
  Topology topo_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<LinkLabelMap> labels_;
  std::unique_ptr<CherryPickCodec> codec_;
  std::unique_ptr<AgentFleet> fleet_;
};

TEST_F(FluidFixture, EcmpSingleRecordPerFlow) {
  FluidConfig cfg;
  FluidSimulation fluid(&topo_, router_.get(), cfg);
  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 100000;
  f.start = 0;
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);
  auto stats = fluid.Run({f}, fleet_.get(), nullptr);
  EXPECT_EQ(stats.flows, 1u);
  EXPECT_EQ(stats.subflows, 1u);
  EXPECT_EQ(fleet_->agent(f.dst).tib().size(), 1u);
  const TibRecord rec = fleet_->agent(f.dst).tib().record(0).value();
  EXPECT_EQ(rec.bytes, 100000u);
  EXPECT_EQ(rec.path.len, 5);
}

TEST_F(FluidFixture, SprayCoversAllPathsProportionally) {
  FluidConfig cfg;
  cfg.lb_mode = LoadBalanceMode::kPacketSpray;
  FluidSimulation fluid(&topo_, router_.get(), cfg);
  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 100 * 1000 * 1000;  // the paper's 100 MB spray flow
  f.start = 0;
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);
  auto stats = fluid.Run({f}, fleet_.get(), nullptr);
  EXPECT_EQ(stats.subflows, 4u);

  auto& agent = fleet_->agent(f.dst);
  EXPECT_EQ(agent.tib().size(), 4u);
  uint64_t total = 0;
  for (const TibRecord& rec : agent.tib().records()) {
    EXPECT_NEAR(double(rec.bytes), 25e6, 1e6);
    total += rec.bytes;
  }
  EXPECT_NEAR(double(total), 100e6, 2e6);
}

TEST_F(FluidFixture, PathChooserOverride) {
  FluidConfig cfg;
  FluidSimulation fluid(&topo_, router_.get(), cfg);
  Path forced = router_->EcmpPaths(topo_.hosts().front(), topo_.hosts().back())[2];
  fluid.SetPathChooser([&](const FlowDesc&) {
    return std::vector<std::pair<Path, double>>{{forced, 1.0}};
  });
  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 5000;
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);
  fluid.Run({f}, fleet_.get(), nullptr);
  ASSERT_EQ(fleet_->agent(f.dst).tib().size(), 1u);
  EXPECT_EQ(fleet_->agent(f.dst).tib().record(0)->path.ToPath(), forced);
}

TEST_F(FluidFixture, FaultyLinkRaisesAlarms) {
  FluidConfig cfg;
  cfg.alarm_drop_threshold = 3;
  cfg.seed = 5;
  FluidSimulation fluid(&topo_, router_.get(), cfg);

  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 10 * 1000 * 1000;  // ~6850 packets
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);

  // Find its ECMP path and put a 1% fault on the first switch link.
  Path p = router_->WalkPath(f.src, f.dst, FiveTupleHash{}(f.tuple));
  fluid.AddSilentDrop(p[0], p[1], 0.01);

  std::vector<Alarm> alarms;
  auto stats = fluid.Run({f}, fleet_.get(), [&](const Alarm& a) { alarms.push_back(a); });
  EXPECT_GT(stats.dropped_pkts, 20u);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].reason, AlarmReason::kPoorPerf);
  EXPECT_EQ(alarms[0].host, f.src);
  // Sender-side retx monitor reflects the drops.
  EXPECT_GE(fleet_->agent(f.src).TotalRetx(f.tuple), stats.dropped_pkts);
}

TEST_F(FluidFixture, HealthyFlowNoAlarms) {
  FluidConfig cfg;
  FluidSimulation fluid(&topo_, router_.get(), cfg);
  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 10 * 1000 * 1000;
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);
  int alarms = 0;
  fluid.Run({f}, fleet_.get(), [&](const Alarm&) { ++alarms; });
  EXPECT_EQ(alarms, 0);
}

TEST_F(FluidFixture, LinkLoadTracking) {
  FluidConfig cfg;
  FluidSimulation fluid(&topo_, router_.get(), cfg);
  fluid.EnableLinkLoadTracking(kNsPerSec);

  FlowDesc f;
  f.src = topo_.hosts().front();
  f.dst = topo_.hosts().back();
  f.bytes = 77777;
  f.start = 2 * kNsPerSec + 1;  // bucket 2
  f.tuple = testutil::MakeFlow(topo_, f.src, f.dst);
  fluid.Run({f}, fleet_.get(), nullptr);

  Path p = router_->WalkPath(f.src, f.dst, FiveTupleHash{}(f.tuple));
  EXPECT_EQ(fluid.LinkLoad(p[0], p[1], 2), 77777u);
  EXPECT_EQ(fluid.LinkLoad(p[0], p[1], 1), 0u);
  EXPECT_EQ(fluid.LinkLoad(p[1], p[0], 2), 0u);  // directed
}

TEST_F(FluidFixture, DeterministicUnderSeed) {
  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo_, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 20;
  params.duration = 3 * kNsPerSec;
  params.seed = 4;
  auto flows = gen.Generate(params);

  auto run = [&](uint64_t seed) {
    FluidConfig cfg;
    cfg.seed = seed;
    AgentFleet fleet(&topo_, codec_.get());
    FluidSimulation fluid(&topo_, router_.get(), cfg);
    fluid.AddSilentDrop(topo_.fat_tree()->agg[0][0], topo_.fat_tree()->core[0], 0.02);
    return fluid.Run(flows, &fleet, nullptr).dropped_pkts;
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace pathdump
