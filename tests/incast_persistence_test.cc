// Tests for the incast model + diagnoser and for TIB persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/apps/incast_diagnosis.h"
#include "src/apps/outcast_diagnosis.h"
#include "src/tcp/incast.h"
#include "src/topology/fat_tree.h"
#include "src/topology/routing.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Incast model ---

class IncastSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncastSweep, GoodputCollapsesWithSenderCount) {
  int senders = GetParam();
  IncastConfig cfg;
  cfg.num_senders = senders;
  cfg.seed = 3;
  IncastResult r = IncastSimulator(cfg).Run();
  ASSERT_EQ(int(r.flows.size()), senders);
  EXPECT_GT(r.link_capacity_mbps, 0);
  // With few senders the link is reasonably used (the epoch barrier caps
  // it below line rate); with many, goodput collapses by an order of
  // magnitude — the classic incast cliff.
  double util = r.aggregate_goodput_mbps / r.link_capacity_mbps;
  if (senders <= 2) {
    EXPECT_GT(util, 0.4) << "no incast with few senders";
  }
  if (senders >= 24) {
    EXPECT_LT(util, 0.15) << "throughput collapse expected";
    int with_timeouts = 0;
    for (const auto& f : r.flows) {
      with_timeouts += f.timeouts > 0 ? 1 : 0;
    }
    EXPECT_GT(with_timeouts, senders / 2) << "timeouts should be widespread";
  }
}

INSTANTIATE_TEST_SUITE_P(Senders, IncastSweep, ::testing::Values(2, 8, 24, 48));

TEST(IncastModel, CollapseIsMonotoneIsh) {
  auto util_for = [](int n) {
    IncastConfig cfg;
    cfg.num_senders = n;
    cfg.seed = 9;
    IncastResult r = IncastSimulator(cfg).Run();
    return r.aggregate_goodput_mbps / r.link_capacity_mbps;
  };
  EXPECT_GT(util_for(2), util_for(48));
}

// --- Incast vs outcast classification from TIB + alarms ---

struct DiagFixture {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels{&topo};
  CherryPickCodec codec{&topo, &labels};
  Router router{&topo};
};

TEST(IncastDiagnosis, SymmetricCollapseIsIncast) {
  DiagFixture fx;
  HostId receiver = fx.topo.hosts()[0];
  EdgeAgent agent(receiver, &fx.topo, &fx.codec);

  IncastConfig cfg;
  cfg.num_senders = 15;
  cfg.seed = 5;
  IncastResult r = IncastSimulator(cfg).Run();
  double duration_s = r.duration_seconds;

  std::vector<HostId> senders;
  for (HostId h : fx.topo.hosts()) {
    if (h != receiver && int(senders.size()) < cfg.num_senders) {
      senders.push_back(h);
    }
  }
  std::vector<SimTime> alarm_times;
  for (size_t i = 0; i < senders.size(); ++i) {
    TibRecord rec;
    rec.flow = testutil::MakeFlow(fx.topo, senders[i], receiver, uint16_t(21000 + i));
    rec.path = CompactPath::FromPath(fx.router.EcmpPaths(senders[i], receiver)[0]);
    rec.stime = 0;
    rec.etime = SimTime(duration_s * double(kNsPerSec));
    rec.bytes = r.flows[i].delivered_pkts * cfg.mss_bytes;
    rec.pkts = uint32_t(r.flows[i].delivered_pkts);
    agent.IngestRecord(rec, rec.etime);
  }
  for (const RetxEvent& e : r.retx_events) {
    alarm_times.push_back(e.at);
  }
  ASSERT_GT(alarm_times.size(), 10u);

  IncastDiagnoser diag(r.link_capacity_mbps);
  IncastVerdict v =
      diag.Diagnose(agent, TimeRange::All(), duration_s, alarm_times);
  EXPECT_TRUE(v.is_incast) << "util=" << v.utilization << " sym=" << v.symmetric_fraction
                           << " burst=" << v.alarm_burstiness;
  EXPECT_GE(v.symmetric_fraction, 0.7);
  EXPECT_LT(v.utilization, 0.7);

  // The same data must NOT read as outcast (no asymmetric victim).
  OutcastDiagnoser out(1, 2.0);
  OutcastVerdict ov = out.Diagnose(agent, TimeRange::All(), duration_s);
  EXPECT_FALSE(ov.is_outcast);
}

TEST(IncastDiagnosis, HealthyTrafficIsNotIncast) {
  DiagFixture fx;
  HostId receiver = fx.topo.hosts()[0];
  EdgeAgent agent(receiver, &fx.topo, &fx.codec);
  // Two senders, high utilization, no alarms.
  for (int i = 1; i <= 2; ++i) {
    HostId src = fx.topo.hosts()[size_t(i)];
    TibRecord rec;
    rec.flow = testutil::MakeFlow(fx.topo, src, receiver, uint16_t(22000 + i));
    rec.path = CompactPath::FromPath(fx.router.EcmpPaths(src, receiver)[0]);
    rec.stime = 0;
    rec.etime = kNsPerSec;
    rec.bytes = 56'000'000;  // ~450 Mbps each over 1 s
    rec.pkts = 40000;
    agent.IngestRecord(rec, rec.etime);
  }
  IncastDiagnoser diag(1000.0);
  IncastVerdict v = diag.Diagnose(agent, TimeRange::All(), 1.0, {});
  EXPECT_FALSE(v.is_incast);
  EXPECT_GT(v.utilization, 0.7);
}

// --- TIB persistence ---

TEST(TibPersistence, SaveLoadRoundTrip) {
  Tib tib;
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  for (int i = 0; i < 500; ++i) {
    HostId src = topo.hosts()[size_t(i) % topo.hosts().size()];
    HostId dst = topo.hosts()[(size_t(i) + 3) % topo.hosts().size()];
    if (src == dst) {
      continue;
    }
    TibRecord rec;
    rec.flow = testutil::MakeFlow(topo, src, dst, uint16_t(i));
    rec.path = CompactPath::FromPath(router.EcmpPaths(src, dst)[size_t(i) % 2]);
    rec.stime = SimTime(i) * kNsPerMs;
    rec.etime = rec.stime + kNsPerMs;
    rec.bytes = uint64_t(i) * 1000 + 5;
    rec.pkts = uint32_t(i + 1);
    tib.Insert(rec);
  }

  const std::string path = "/tmp/pathdump_tib_test.bin";
  size_t written = tib.SaveTo(path);
  ASSERT_GT(written, 0u);

  Tib loaded;
  ASSERT_EQ(loaded.LoadFrom(path), int64_t(tib.size()));
  ASSERT_EQ(loaded.size(), tib.size());
  for (size_t i = 0; i < tib.size(); ++i) {
    const TibRecord a = tib.record(i).value();
    const TibRecord b = loaded.record(i).value();
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_TRUE(a.path == b.path);
    EXPECT_EQ(a.stime, b.stime);
    EXPECT_EQ(a.etime, b.etime);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.pkts, b.pkts);
  }
  // Indexes were rebuilt on load.
  const TibRecord probe = tib.record(7).value();
  EXPECT_FALSE(loaded.RecordsOfFlow(probe.flow, TimeRange::All()).empty());
  std::remove(path.c_str());
}

TEST(TibPersistence, RejectsGarbageAndMissingFiles) {
  Tib tib;
  EXPECT_EQ(tib.LoadFrom("/tmp/definitely_missing_pathdump.bin"), -1);

  const std::string path = "/tmp/pathdump_tib_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a TIB";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_EQ(tib.LoadFrom(path), -1);
  EXPECT_EQ(tib.size(), 0u);
  std::remove(path.c_str());
}

TEST(TibPersistence, EmptyTibRoundTrips) {
  Tib tib;
  const std::string path = "/tmp/pathdump_tib_empty.bin";
  ASSERT_GT(tib.SaveTo(path), 0u);
  Tib loaded;
  EXPECT_EQ(loaded.LoadFrom(path), 0);
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathdump
