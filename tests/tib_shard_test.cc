// Sharded-TIB contract tests (the PR 3 tentpole):
//
//  1. Determinism — TopK, FlowSizeDistribution, RecordsOnLink, and
//     RecordsOfFlow return byte-identical results across {1, 4, 16}
//     shards x {1, 4, 16} scan workers at the paper's 240 K records/host.
//  2. Concurrency — inserts racing shard-parallel scans are safe (run
//     under ThreadSanitizer in CI) and the post-race state matches a
//     sequentially built reference.
//  3. Persistence — the single-file on-disk format is byte-identical at
//     any shard count, round-trips across mismatched shard counts, and
//     truncated/corrupt tails are rejected.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/edge/edge_agent.h"
#include "src/edge/tib.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// The paper's per-host TIB population (§5.1).
constexpr int kEntries = 240000;

// The shared synthetic fixture (tests/test_util.h) at this file's
// historical distribution (4096-address IP space).
std::vector<TibRecord> MakeRecords(int n, uint32_t seed) {
  return testutil::MakeSyntheticRecords(n, seed, {.ip_space = 4096, .switch_space = 24});
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- 1. Shard/worker determinism at 240 K records ---

class TibShardDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    topo_ = new Topology(BuildFatTree(4));
    labels_ = new LinkLabelMap(topo_);
    codec_ = new CherryPickCodec(topo_, labels_);
    records_ = new std::vector<TibRecord>(MakeRecords(kEntries, 0xDE7E));
  }
  static void TearDownTestSuite() {
    delete records_;
    delete codec_;
    delete labels_;
    delete topo_;
    records_ = nullptr;
    codec_ = nullptr;
    labels_ = nullptr;
    topo_ = nullptr;
  }

  static Topology* topo_;
  static LinkLabelMap* labels_;
  static CherryPickCodec* codec_;
  static std::vector<TibRecord>* records_;
};

Topology* TibShardDeterminism::topo_ = nullptr;
LinkLabelMap* TibShardDeterminism::labels_ = nullptr;
CherryPickCodec* TibShardDeterminism::codec_ = nullptr;
std::vector<TibRecord>* TibShardDeterminism::records_ = nullptr;

TEST_F(TibShardDeterminism, QueriesByteIdenticalAcrossShardAndWorkerMatrix) {
  const LinkId probe{3, 7};          // present in a fraction of random paths
  const LinkId into{kInvalidNode, 5};
  const TimeRange mid{600 * kNsPerSec, 2400 * kNsPerSec};

  // Sample flows for the point-lookup query: every 4801st record's tuple.
  std::vector<FiveTuple> sample_flows;
  for (size_t i = 0; i < records_->size(); i += 4801) {
    sample_flows.push_back((*records_)[i].flow);
  }
  ASSERT_GE(sample_flows.size(), 40u);

  TopKFlows base_topk;
  FlowSizeHistogram base_dist;
  std::vector<size_t> base_on_link, base_into;
  std::vector<std::vector<size_t>> base_of_flow;
  bool have_base = false;

  for (size_t shards : {size_t(1), size_t(4), size_t(16)}) {
    EdgeAgentConfig cfg;
    cfg.tib_options.num_shards = shards;
    EdgeAgent agent(topo_->hosts().front(), topo_, codec_, cfg);
    for (const TibRecord& rec : *records_) {
      agent.tib().Insert(rec);
    }
    ASSERT_EQ(agent.tib().size(), size_t(kEntries));
    ASSERT_EQ(agent.tib().shard_count(), shards);

    for (size_t workers : {size_t(1), size_t(4), size_t(16)}) {
      ThreadPool pool(workers);
      agent.SetQueryThreadPool(&pool);

      TopKFlows topk = agent.TopK(1000, TimeRange::All());
      FlowSizeHistogram dist = agent.FlowSizeDistribution(probe, mid, 10000);
      std::vector<size_t> on_link = agent.tib().RecordsOnLink(probe, TimeRange::All());
      std::vector<size_t> into_link = agent.tib().RecordsOnLink(into, mid);
      std::vector<std::vector<size_t>> of_flow;
      for (const FiveTuple& f : sample_flows) {
        of_flow.push_back(agent.tib().RecordsOfFlow(f, mid));
      }
      agent.SetQueryThreadPool(nullptr);

      if (!have_base) {
        base_topk = topk;
        base_dist = dist;
        base_on_link = on_link;
        base_into = into_link;
        base_of_flow = of_flow;
        have_base = true;
        EXPECT_EQ(base_topk.items.size(), 1000u);
        EXPECT_FALSE(base_on_link.empty());
        continue;
      }
      EXPECT_EQ(topk, base_topk) << shards << " shards, " << workers << " workers";
      EXPECT_EQ(dist, base_dist) << shards << " shards, " << workers << " workers";
      EXPECT_EQ(on_link, base_on_link) << shards << " shards, " << workers << " workers";
      EXPECT_EQ(into_link, base_into) << shards << " shards, " << workers << " workers";
      EXPECT_EQ(of_flow, base_of_flow) << shards << " shards, " << workers << " workers";
    }
  }
}

TEST_F(TibShardDeterminism, SnapshotAndIdsPreserveInsertionOrder) {
  TibOptions opt;
  opt.num_shards = 8;
  Tib tib(opt);
  for (size_t i = 0; i < 10000; ++i) {
    tib.Insert((*records_)[i]);
  }
  std::vector<TibRecord> snap = tib.records();
  ASSERT_EQ(snap.size(), 10000u);
  for (size_t i = 0; i < snap.size(); ++i) {
    ASSERT_EQ(snap[i], (*records_)[i]) << "id " << i;
  }
  // Point lookups agree with the snapshot.
  for (size_t i = 0; i < snap.size(); i += 997) {
    EXPECT_EQ(tib.record(i).value(), snap[i]);
  }
  // GetFlows dedup/order is shard-count independent too.
  TibOptions one;
  one.num_shards = 1;
  Tib flat(one);
  for (size_t i = 0; i < 10000; ++i) {
    flat.Insert((*records_)[i]);
  }
  LinkId probe{3, 7};
  EXPECT_EQ(tib.FlowsOnLink(probe, TimeRange::All()), flat.FlowsOnLink(probe, TimeRange::All()));
}

TEST_F(TibShardDeterminism, FlowLookupsMatchWithAndWithoutIndex) {
  TibOptions indexed;
  indexed.num_shards = 4;
  TibOptions scan_only;
  scan_only.num_shards = 4;
  scan_only.index_by_flow = false;
  Tib a(indexed), b(scan_only);
  for (size_t i = 0; i < 20000; ++i) {
    a.Insert((*records_)[i]);
    b.Insert((*records_)[i]);
  }
  for (size_t i = 0; i < 20000; i += 1231) {
    const FiveTuple& f = (*records_)[i].flow;
    EXPECT_EQ(a.RecordsOfFlow(f, TimeRange::All()), b.RecordsOfFlow(f, TimeRange::All()));
  }
}

// --- 2. Inserts racing shard-parallel scans (TSan) ---

TEST(TibShardConcurrency, InsertsRaceScans) {
  // 200 K preloaded + 2 x 20 K racing inserts = the paper's 240 K total.
  const int preload = 200000;
  const int per_writer = 20000;
  std::vector<TibRecord> records = MakeRecords(preload + 2 * per_writer, 0xACE5);

  TibOptions opt;
  opt.num_shards = 8;
  Tib tib(opt);
  for (int i = 0; i < preload; ++i) {
    tib.Insert(records[size_t(i)]);
  }

  ThreadPool pool(4);
  tib.SetScanPool(&pool);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scans{0};
  const LinkId probe{3, 7};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < per_writer; ++i) {
        tib.Insert(records[size_t(preload + w * per_writer + i)]);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        FlowBytesMap agg = tib.AggregateFlowBytes(probe, TimeRange::All());
        std::vector<size_t> ids = tib.RecordsOnLink(probe, TimeRange::All());
        // Ids are a monotone merge of per-shard ascending columns.
        for (size_t i = 1; i < ids.size(); ++i) {
          ASSERT_LT(ids[i - 1], ids[i]);
        }
        ASSERT_LE(agg.size(), tib.size());
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  tib.SetScanPool(nullptr);
  EXPECT_GE(scans.load(), 1u);
  ASSERT_EQ(tib.size(), size_t(preload + 2 * per_writer));

  // Post-race contents equal a sequential reference, modulo insertion
  // order of the racing tail: compare as per-flow aggregates (exact) and
  // total match counts.
  TibOptions ref_opt;
  ref_opt.num_shards = 1;
  Tib ref(ref_opt);
  for (const TibRecord& rec : records) {
    ref.Insert(rec);
  }
  EXPECT_EQ(tib.AggregateFlowBytes(probe, TimeRange::All()),
            ref.AggregateFlowBytes(probe, TimeRange::All()));
  EXPECT_EQ(tib.AggregateFlowBytes(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All()),
            ref.AggregateFlowBytes(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All()));
  EXPECT_EQ(tib.RecordsOnLink(probe, TimeRange::All()).size(),
            ref.RecordsOnLink(probe, TimeRange::All()).size());
}

// --- 3. Persistence across shard counts ---

TEST(TibShardPersistence, FileBytesIndependentOfShardCount) {
  std::vector<TibRecord> records = MakeRecords(5000, 0xF11E);
  TibOptions one;
  one.num_shards = 1;
  TibOptions eight;
  eight.num_shards = 8;
  Tib a(one), b(eight);
  for (const TibRecord& rec : records) {
    a.Insert(rec);
    b.Insert(rec);
  }
  const std::string pa = "/tmp/pathdump_shard_save_1.bin";
  const std::string pb = "/tmp/pathdump_shard_save_8.bin";
  ASSERT_GT(a.SaveTo(pa), 0u);
  ASSERT_GT(b.SaveTo(pb), 0u);
  EXPECT_EQ(ReadFileBytes(pa), ReadFileBytes(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(TibShardPersistence, RoundTripsAcrossMismatchedShardCounts) {
  std::vector<TibRecord> records = MakeRecords(5000, 0x0DD5);
  TibOptions eight;
  eight.num_shards = 8;
  Tib saved(eight);
  for (const TibRecord& rec : records) {
    saved.Insert(rec);
  }
  const std::string path = "/tmp/pathdump_shard_roundtrip.bin";
  ASSERT_GT(saved.SaveTo(path), 0u);

  // Save at 8 shards, load at 1 — and back out again at 16.
  TibOptions one;
  one.num_shards = 1;
  Tib flat(one);
  ASSERT_EQ(flat.LoadFrom(path), int64_t(records.size()));
  EXPECT_EQ(flat.records(), records);

  ASSERT_GT(flat.SaveTo(path), 0u);
  TibOptions sixteen;
  sixteen.num_shards = 16;
  Tib wide(sixteen);
  ASSERT_EQ(wide.LoadFrom(path), int64_t(records.size()));
  EXPECT_EQ(wide.records(), records);

  // Queries agree after the double hop.
  LinkId probe{3, 7};
  EXPECT_EQ(wide.RecordsOnLink(probe, TimeRange::All()),
            saved.RecordsOnLink(probe, TimeRange::All()));
  const FiveTuple& f = records[17].flow;
  EXPECT_EQ(wide.RecordsOfFlow(f, TimeRange::All()), saved.RecordsOfFlow(f, TimeRange::All()));
  std::remove(path.c_str());
}

TEST(TibShardPersistence, RejectsTruncatedAndCorruptTails) {
  std::vector<TibRecord> records = MakeRecords(64, 0xBAD);
  TibOptions eight;
  eight.num_shards = 8;
  Tib tib(eight);
  for (const TibRecord& rec : records) {
    tib.Insert(rec);
  }
  const std::string path = "/tmp/pathdump_shard_corrupt.bin";
  ASSERT_GT(tib.SaveTo(path), 0u);

  // Truncate mid-row: header promises 64 rows, the tail is gone.
  std::string bytes = ReadFileBytes(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size() / 2));
  }
  Tib loaded(eight);
  EXPECT_EQ(loaded.LoadFrom(path), -1);
  EXPECT_EQ(loaded.size(), 0u);

  // Corrupt a row's path_len (offset 29 = 16-byte header + 13 bytes of
  // five-tuple fields) to an impossible value.
  bytes[29] = char(0xFF);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
  }
  EXPECT_EQ(loaded.LoadFrom(path), -1);
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathdump
