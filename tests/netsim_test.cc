#include <gtest/gtest.h>

#include <set>

#include "src/netsim/event_queue.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(10, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NestedScheduling) {
  EventQueue q;
  int fired = 0;
  q.Schedule(5, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.RunUntil(9);
  EXPECT_EQ(fired, 1);
  q.RunUntil(10);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilAdvancesClock) {
  EventQueue q;
  q.RunUntil(100);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, RunAllBounded) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(i, [&] { ++fired; });
  }
  EXPECT_EQ(q.RunAll(3), 3u);
  EXPECT_EQ(fired, 3);
}

class NetworkDelivery : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    net_ = std::make_unique<Network>(&topo_, NetworkConfig{});
  }
  Topology topo_;
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkDelivery, PacketReachesDestination) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  Packet p;
  p.flow = testutil::MakeFlow(topo_, src, dst);
  p.src_host = src;
  p.dst_host = dst;

  int delivered = 0;
  net_->SetHostSink(dst, [&](const Packet& pkt, SimTime) {
    ++delivered;
    // Ground truth trace has 5 switches for an inter-pod fat-tree path.
    EXPECT_EQ(pkt.trace.size(), 5u);
    EXPECT_EQ(pkt.trace.front(), topo_.TorOfHost(pkt.src_host));
    EXPECT_EQ(pkt.trace.back(), topo_.TorOfHost(pkt.dst_host));
    // Exactly one sampled label on a shortest inter-pod path.
    EXPECT_EQ(pkt.tags.size(), 1u);
  });
  net_->InjectPacket(p, 0);
  net_->events().RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_->stats().delivered, 1u);
}

TEST_F(NetworkDelivery, DecodedTagsMatchGroundTruthTrace) {
  // Inject many flows; for every delivered packet the CherryPick decode of
  // its tags must equal its true trace.  This is the system-level
  // correctness property of the whole tracing design.
  std::set<Path> distinct_paths;
  int delivered = 0;
  net_->SetDefaultSink([&](const Packet& pkt, SimTime) {
    ++delivered;
    auto decoded = net_->codec().Decode(pkt.src_host, pkt.dst_host, pkt.dscp, pkt.tags);
    ASSERT_TRUE(decoded.has_value()) << PathToString(pkt.trace);
    EXPECT_EQ(*decoded, pkt.trace);
    distinct_paths.insert(pkt.trace);
  });
  int flows = 0;
  for (HostId src : topo_.hosts()) {
    for (HostId dst : topo_.hosts()) {
      if (src == dst) {
        continue;
      }
      Packet p;
      p.flow = testutil::MakeFlow(topo_, src, dst, uint16_t(10000 + flows));
      p.src_host = src;
      p.dst_host = dst;
      net_->InjectPacket(p, 0);
      ++flows;
    }
  }
  net_->events().RunAll();
  EXPECT_EQ(delivered, flows);
  EXPECT_GT(distinct_paths.size(), 10u);
}

TEST_F(NetworkDelivery, SprayModeCoversMultiplePaths) {
  NetworkConfig cfg;
  cfg.lb_mode = LoadBalanceMode::kPacketSpray;
  Network net(&topo_, cfg);
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  std::set<Path> paths;
  net.SetHostSink(dst, [&](const Packet& pkt, SimTime) { paths.insert(pkt.trace); });
  FiveTuple flow = testutil::MakeFlow(topo_, src, dst);
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    p.seq = uint32_t(i);
    net.InjectPacket(p, SimTime(i) * kNsPerUs);
  }
  net.events().RunAll();
  // k=4: 4 equal-cost inter-pod paths; spraying should hit all of them.
  EXPECT_EQ(paths.size(), 4u);
}

TEST_F(NetworkDelivery, EcmpModeIsPathStable) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  std::set<Path> paths;
  net_->SetHostSink(dst, [&](const Packet& pkt, SimTime) { paths.insert(pkt.trace); });
  FiveTuple flow = testutil::MakeFlow(topo_, src, dst);
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    p.seq = uint32_t(i);
    net_->InjectPacket(p, SimTime(i) * kNsPerUs);
  }
  net_->events().RunAll();
  EXPECT_EQ(paths.size(), 1u) << "ECMP must keep one flow on one path";
}

TEST_F(NetworkDelivery, SilentDropIsInvisible) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  // Find the path, then blackhole its agg->core egress silently.
  Path taken;
  net_->SetHostSink(dst, [&](const Packet& pkt, SimTime) { taken = pkt.trace; });
  Packet probe;
  probe.flow = testutil::MakeFlow(topo_, src, dst);
  probe.src_host = src;
  probe.dst_host = dst;
  net_->InjectPacket(probe, 0);
  net_->events().RunAll();
  ASSERT_EQ(taken.size(), 5u);

  SwitchNode& agg = net_->switch_at(taken[1]);
  agg.SetBlackhole(taken[2]);
  int drops_seen = 0;
  bool silent_seen = false;
  net_->SetDropHandler([&](const Packet&, SwitchId at, bool silent, SimTime) {
    ++drops_seen;
    silent_seen = silent;
    EXPECT_EQ(at, taken[1]);
  });
  Packet p2 = probe;
  p2.seq = 1;
  net_->InjectPacket(p2, kNsPerSec);
  net_->events().RunAll();
  EXPECT_EQ(drops_seen, 1);
  EXPECT_TRUE(silent_seen);
  // The silent drop must NOT appear in the reported drop counter.
  EXPECT_EQ(agg.counters().drops_reported, 0u);
  EXPECT_EQ(agg.counters().drops_silent, 1u);
}

TEST_F(NetworkDelivery, SilentDropRateApproximatesConfigured) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  Path taken;
  net_->SetHostSink(dst, [&](const Packet& pkt, SimTime) { taken = pkt.trace; });
  Packet probe;
  probe.flow = testutil::MakeFlow(topo_, src, dst);
  probe.src_host = src;
  probe.dst_host = dst;
  net_->InjectPacket(probe, 0);
  net_->events().RunAll();
  ASSERT_FALSE(taken.empty());

  net_->switch_at(taken[0]).SetSilentDropRate(taken[1], 0.3);
  int delivered = 0;
  net_->SetHostSink(dst, [&](const Packet&, SimTime) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Packet p = probe;
    p.seq = uint32_t(i + 1);
    net_->InjectPacket(p, kNsPerSec + SimTime(i) * kNsPerUs);
  }
  net_->events().RunAll();
  EXPECT_NEAR(double(delivered) / n, 0.7, 0.04);
}

TEST_F(NetworkDelivery, HopLimitKillsUntaggedLoops) {
  // A loop among switches that never push 3 tags must still terminate.
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  NetworkConfig cfg;
  cfg.max_hops = 40;
  Network net(&sc.topo, cfg);
  net.codec().SetGenericPushers({});  // nobody samples -> no punt possible
  net.router().SetStaticNextHops(sc.s1, sc.host_b, {sc.s2});
  net.router().SetStaticNextHops(sc.s2, sc.host_b, {sc.s3});
  net.router().SetStaticNextHops(sc.s3, sc.host_b, {sc.s4});
  net.router().SetStaticNextHops(sc.s4, sc.host_b, {sc.s5});
  net.router().SetStaticNextHops(sc.s5, sc.host_b, {sc.s2});

  Packet p;
  p.flow = testutil::MakeFlow(sc.topo, sc.host_a, sc.host_b);
  p.src_host = sc.host_a;
  p.dst_host = sc.host_b;
  net.InjectPacket(p, 0);
  net.events().RunAll();
  EXPECT_EQ(net.stats().hop_limit_drops, 1u);
}

TEST(SwitchNodeTest, PuntOnThreeTags) {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  Packet p;
  p.flow = testutil::MakeFlow(topo, src, dst);
  p.src_host = src;
  p.dst_host = dst;
  p.tags = {1, 2, 3};  // already over the ASIC limit
  SwitchId tor = topo.TorOfHost(src);

  SwitchNode::Result res = net.switch_at(tor).Process(p, src, LoadBalanceMode::kEcmpHash);
  EXPECT_EQ(res.outcome, SwitchNode::Outcome::kPunt);
  EXPECT_EQ(net.switch_at(tor).counters().punted, 1u);
}

TEST(SwitchNodeTest, TwoTagsStillForwardAtLineRate) {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  Packet p;
  p.flow = testutil::MakeFlow(topo, src, dst);
  p.src_host = src;
  p.dst_host = dst;
  p.tags = {1, 2};  // QinQ is fine
  SwitchId tor = topo.TorOfHost(src);
  SwitchNode::Result res = net.switch_at(tor).Process(p, src, LoadBalanceMode::kEcmpHash);
  EXPECT_EQ(res.outcome, SwitchNode::Outcome::kForward);
}

TEST(SwitchNodeTest, EgressByteCounters) {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  SwitchId tor = topo.TorOfHost(src);
  Packet p;
  p.flow = testutil::MakeFlow(topo, src, dst);
  p.src_host = src;
  p.dst_host = dst;
  p.size_bytes = 1000;
  SwitchNode::Result res = net.switch_at(tor).Process(p, src, LoadBalanceMode::kEcmpHash);
  ASSERT_EQ(res.outcome, SwitchNode::Outcome::kForward);
  EXPECT_EQ(net.switch_at(tor).EgressBytes(res.next), 1000u);
}

TEST(SwitchNodeTest, NoRouteIsReportedDrop) {
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  Network net(&sc.topo, NetworkConfig{});
  // S1's only route to B runs via S2; kill it.
  net.router().link_state().SetDown(sc.s1, sc.s2);
  Packet p;
  p.flow = testutil::MakeFlow(sc.topo, sc.host_a, sc.host_b);
  p.src_host = sc.host_a;
  p.dst_host = sc.host_b;
  SwitchNode::Result res = net.switch_at(sc.s1).Process(p, sc.host_a, LoadBalanceMode::kEcmpHash);
  EXPECT_EQ(res.outcome, SwitchNode::Outcome::kDrop);
  EXPECT_FALSE(res.silent);
  EXPECT_EQ(net.switch_at(sc.s1).counters().drops_reported, 1u);
}

TEST(SegmenterTest, SplitsAndFlags) {
  FiveTuple flow{1, 2, 3, 4, kProtoTcp};
  auto pkts = SegmentFlow(flow, 10, 20, 4000, 1460);
  ASSERT_EQ(pkts.size(), 3u);
  EXPECT_TRUE(pkts.front().syn);
  EXPECT_FALSE(pkts.front().fin);
  EXPECT_TRUE(pkts.back().fin);
  EXPECT_EQ(pkts[0].size_bytes, 1460u);
  EXPECT_EQ(pkts[2].size_bytes, uint32_t(4000 - 2 * 1460));
  EXPECT_EQ(pkts[1].seq, 1u);
}

TEST(SegmenterTest, TinyFlowIsOnePacket) {
  FiveTuple flow{1, 2, 3, 4, kProtoTcp};
  auto pkts = SegmentFlow(flow, 10, 20, 1, 1460);
  ASSERT_EQ(pkts.size(), 1u);
  EXPECT_TRUE(pkts[0].syn);
  EXPECT_TRUE(pkts[0].fin);
  EXPECT_EQ(pkts[0].size_bytes, kMinPacketBytes);  // padded to minimum
}

}  // namespace
}  // namespace pathdump
