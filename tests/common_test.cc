#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/topk.h"
#include "src/common/types.h"

namespace pathdump {
namespace {

TEST(TypesTest, IpRendering) {
  EXPECT_EQ(IpToString(0x0A000001), "10.0.0.1");
  EXPECT_EQ(IpToString(0xC0A80101), "192.168.1.1");
}

TEST(TypesTest, FlowToStringRoundsTrip) {
  FiveTuple t{0x0A000001, 0x0A000002, 1234, 80, kProtoTcp};
  EXPECT_EQ(FlowToString(t), "10.0.0.1:1234>10.0.0.2:80/6");
}

TEST(TypesTest, PathToString) {
  EXPECT_EQ(PathToString({1, 2, 3}), "S1->S2->S3");
  EXPECT_EQ(PathToString({}), "");
}

TEST(TypesTest, FiveTupleEqualityAndHash) {
  FiveTuple a{1, 2, 3, 4, 6};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(FiveTupleHash{}(a), FiveTupleHash{}(b));
  b.src_port = 5;
  EXPECT_NE(a, b);
}

TEST(TypesTest, HashDistinguishesPortSwap) {
  FiveTuple a{1, 2, 30, 40, 6};
  FiveTuple b{1, 2, 40, 30, 6};
  EXPECT_NE(FiveTupleHash{}(a), FiveTupleHash{}(b));
}

TEST(TypesTest, TimeRangeSemantics) {
  TimeRange r{100, 200};
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(199));
  EXPECT_FALSE(r.Contains(200));
  EXPECT_TRUE(r.Overlaps(150, 300));
  EXPECT_TRUE(r.Overlaps(0, 100));    // closed record end touching begin
  EXPECT_FALSE(r.Overlaps(200, 300)); // starts at exclusive end
  EXPECT_TRUE(TimeRange::All().Contains(0));
  EXPECT_TRUE(TimeRange::Since(50).Contains(50));
  EXPECT_FALSE(TimeRange::Since(50).Contains(49));
}

TEST(TypesTest, LinkIdOrderingAndHash) {
  LinkId a{1, 2};
  LinkId b{2, 1};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_NE(LinkIdHash{}(a), LinkIdHash{}(b));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU32() == b.NextU32() ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.UniformInt(17), 17u);
  }
}

TEST(RngTest, Uniform01Range) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.Uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += r.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(double(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    sum += r.Exponential(5.0);
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(RngTest, BinomialSmallNExact) {
  Rng r(17);
  Summary s;
  for (int i = 0; i < 5000; ++i) {
    s.Add(double(r.Binomial(20, 0.25)));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.25);
}

TEST(RngTest, BinomialLargeNApproximation) {
  Rng r(19);
  Summary s;
  for (int i = 0; i < 3000; ++i) {
    s.Add(double(r.Binomial(10000, 0.01)));
  }
  EXPECT_NEAR(s.mean(), 100.0, 3.0);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng r(23);
  EXPECT_EQ(r.Binomial(100, 0.0), 0u);
  EXPECT_EQ(r.Binomial(100, 1.0), 100u);
  EXPECT_EQ(r.Binomial(0, 0.5), 0u);
}

TEST(StatsTest, SummaryBasics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
  EXPECT_NEAR(s.stderror(), 0.645497, 1e-4);
}

TEST(StatsTest, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, CdfQuantiles) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) {
    c.Add(double(i));
  }
  EXPECT_NEAR(c.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(c.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(c.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(c.FractionBelow(50.0), 0.5, 0.01);
  EXPECT_EQ(c.Points(5).size(), 5u);
}

TEST(StatsTest, HistogramBinning) {
  Histogram h(10.0);
  h.Add(5);
  h.Add(15);
  h.Add(15);
  h.Add(25, 3);
  EXPECT_EQ(h.bins().at(0), 1);
  EXPECT_EQ(h.bins().at(1), 2);
  EXPECT_EQ(h.bins().at(2), 3);
  EXPECT_EQ(h.total(), 6);
}

TEST(StatsTest, ImbalanceRate) {
  // Perfectly balanced -> 0%.
  EXPECT_DOUBLE_EQ(ImbalanceRatePercent({10, 10}), 0.0);
  // One link twice the mean: loads {30, 10}: mean 20, max 30 -> 50%.
  EXPECT_DOUBLE_EQ(ImbalanceRatePercent({30, 10}), 50.0);
  EXPECT_DOUBLE_EQ(ImbalanceRatePercent({}), 0.0);
  EXPECT_DOUBLE_EQ(ImbalanceRatePercent({0, 0}), 0.0);
}

TEST(TopKTest, KeepsLargest) {
  TopK<uint64_t, int> t(3);
  for (int i = 1; i <= 10; ++i) {
    t.Add(uint64_t(i), i);
  }
  auto sorted = t.SortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].key, 10u);
  EXPECT_EQ(sorted[1].key, 9u);
  EXPECT_EQ(sorted[2].key, 8u);
}

TEST(TopKTest, MergePreservesTop) {
  TopK<uint64_t, int> a(3), b(3);
  a.Add(1, 1);
  a.Add(5, 5);
  a.Add(9, 9);
  b.Add(2, 2);
  b.Add(8, 8);
  b.Add(10, 10);
  a.Merge(b);
  auto sorted = a.SortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].key, 10u);
  EXPECT_EQ(sorted[1].key, 9u);
  EXPECT_EQ(sorted[2].key, 8u);
}

TEST(TopKTest, ZeroCapacity) {
  TopK<uint64_t, int> t(0);
  t.Add(5, 5);
  EXPECT_EQ(t.size(), 0u);
}

TEST(HashTest, MixAvalanche) {
  // Neighboring inputs should produce wildly different outputs.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outs.insert(HashMix64(i));
  }
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace pathdump
