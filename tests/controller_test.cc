#include <gtest/gtest.h>

#include <atomic>

#include "src/controller/aggregation_tree.h"
#include "src/controller/controller.h"
#include "src/controller/loop_detector.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

TEST(AggregationTreeTest, PaperShape112Hosts) {
  std::vector<HostId> hosts;
  for (HostId h = 0; h < 112; ++h) {
    hosts.push_back(h);
  }
  AggregationTree tree = BuildAggregationTree(hosts, 7, 4);
  EXPECT_EQ(tree.size(), 112u);
  EXPECT_EQ(tree.roots.size(), 7u);
  // Every host appears exactly once.
  std::vector<int> seen(112, 0);
  for (const AggregationNode& n : tree.nodes) {
    seen[n.host] += 1;
  }
  for (int s : seen) {
    EXPECT_EQ(s, 1);
  }
  // Interior fanout never exceeds 4.
  for (const AggregationNode& n : tree.nodes) {
    EXPECT_LE(n.children.size(), 4u);
  }
  // Depth: 7 + 28 + 77 -> at least 3 levels.
  EXPECT_GE(tree.depth(), 3);
}

TEST(AggregationTreeTest, SmallAndEmpty) {
  EXPECT_EQ(BuildAggregationTree({}, 7, 4).size(), 0u);
  AggregationTree t3 = BuildAggregationTree({1, 2, 3}, 7, 4);
  EXPECT_EQ(t3.size(), 3u);
  EXPECT_EQ(t3.roots.size(), 3u);
  EXPECT_EQ(t3.depth(), 1);
}

class ControllerQueries : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    net_ = std::make_unique<Network>(&topo_, NetworkConfig{});
    fleet_ = std::make_unique<AgentFleet>(&topo_, &net_->codec());
    controller_ = std::make_unique<Controller>();
    controller_->RegisterFleet(*fleet_);

    // Seed TIBs: host h receives a flow of (h+1)*1000 bytes from host 0.
    SimTime now = kNsPerSec;
    for (HostId h : topo_.hosts()) {
      if (h == topo_.hosts().front()) {
        continue;
      }
      TibRecord rec;
      rec.flow = testutil::MakeFlow(topo_, topo_.hosts().front(), h, uint16_t(20000 + h));
      rec.path = CompactPath::FromPath({topo_.TorOfHost(h)});
      rec.stime = 0;
      rec.etime = now;
      rec.bytes = uint64_t(h + 1) * 1000;
      rec.pkts = 10;
      fleet_->agent(h).IngestRecord(rec, now);
    }
  }

  Topology topo_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<AgentFleet> fleet_;
  std::unique_ptr<Controller> controller_;
};

TEST_F(ControllerQueries, DirectAndMultiLevelAgree) {
  std::vector<HostId> hosts = controller_->registered_hosts();
  Controller::QueryFn topk = [](EdgeAgent& a) -> QueryResult {
    return a.TopK(5, TimeRange::All());
  };
  auto [direct, dstats] = controller_->Execute(hosts, topk);
  auto [multi, mstats] = controller_->ExecuteMultiLevel(hosts, topk);

  auto& dt = std::get<TopKFlows>(direct);
  auto& mt = std::get<TopKFlows>(multi);
  dt.Finalize();
  mt.Finalize();
  ASSERT_EQ(dt.items.size(), mt.items.size());
  for (size_t i = 0; i < dt.items.size(); ++i) {
    EXPECT_EQ(dt.items[i].first, mt.items[i].first);
  }
  // The global winner is the largest seeded flow.
  EXPECT_EQ(dt.items[0].first, uint64_t(topo_.hosts().back() + 1) * 1000);

  EXPECT_GT(dstats.response_time_seconds, 0.0);
  EXPECT_GT(mstats.response_time_seconds, 0.0);
  EXPECT_GT(dstats.network_bytes, 0u);
  EXPECT_EQ(dstats.hosts, hosts.size());
}

TEST_F(ControllerQueries, HistogramQueryCountsAllFlows) {
  std::vector<HostId> hosts = controller_->registered_hosts();
  Controller::QueryFn q = [](EdgeAgent& a) -> QueryResult {
    return a.FlowSizeDistribution(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All(), 1000);
  };
  auto [result, stats] = controller_->ExecuteMultiLevel(hosts, q);
  const auto& h = std::get<FlowSizeHistogram>(result);
  int64_t total = 0;
  for (auto& [bin, c] : h.bins) {
    total += c;
  }
  EXPECT_EQ(total, int64_t(topo_.hosts().size()) - 1);
}

TEST_F(ControllerQueries, InstallUninstall) {
  std::vector<HostId> hosts = {topo_.hosts()[0], topo_.hosts()[1]};
  int runs = 0;
  auto ids = controller_->Install(hosts, kNsPerSec,
                                  [&runs](EdgeAgent&, SimTime) { ++runs; });
  ASSERT_EQ(ids.size(), 2u);
  fleet_->TickAll(0);
  EXPECT_EQ(runs, 2);
  controller_->Uninstall(hosts, ids);
  fleet_->TickAll(2 * kNsPerSec);
  EXPECT_EQ(runs, 2);
}

TEST_F(ControllerQueries, AlarmFanOut) {
  fleet_->SetAlarmHandler(controller_->MakeAlarmSink());
  std::atomic<int> seen{0};
  controller_->SubscribeAlarms([&](const Alarm&) { ++seen; });
  EdgeAgent& a = fleet_->agent(topo_.hosts()[3]);
  a.RaiseAlarm(FiveTuple{1, 2, 3, 4, 6}, AlarmReason::kPoorPerf, {}, 0);
  // Intake is asynchronous (alarm_pipeline.h): flush before observing.
  controller_->FlushAlarms();
  EXPECT_EQ(seen.load(), 1);
  EXPECT_EQ(controller_->alarm_log().size(), 1u);
  EXPECT_EQ(controller_->alarm_log()[0].host, topo_.hosts()[3]);
  EXPECT_EQ(controller_->alarm_log()[0].seq, 0u);
}

TEST_F(ControllerQueries, UnknownHostIsSkipped) {
  Controller::QueryFn q = [](EdgeAgent& a) -> QueryResult {
    return a.TopK(1, TimeRange::All());
  };
  auto [result, stats] = controller_->Execute({99999}, q);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(result));
}

// --- Routing-loop detection (Fig. 9) ---

class LoopDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    sc_ = testutil::BuildLoopScenario();
    NetworkConfig cfg;
    cfg.max_hops = 256;
    net_ = std::make_unique<Network>(&sc_.topo, cfg);
    // Alternate-switch sampling, as the paper's scenario configures.
    net_->codec().SetGenericPushers({sc_.s3, sc_.s5});
    detector_ = std::make_unique<LoopDetector>(net_.get());
    detector_->Attach();
  }

  // Installs static routes; loop_via_s5 creates S2->S3->S4->S5->S2.
  void InstallLoop() {
    Router& r = net_->router();
    r.SetStaticNextHops(sc_.s1, sc_.host_b, {sc_.s2});
    r.SetStaticNextHops(sc_.s2, sc_.host_b, {sc_.s3});
    r.SetStaticNextHops(sc_.s3, sc_.host_b, {sc_.s4});
    r.SetStaticNextHops(sc_.s4, sc_.host_b, {sc_.s5});  // misconfigured
    r.SetStaticNextHops(sc_.s5, sc_.host_b, {sc_.s2});
  }

  void Inject() {
    Packet p;
    p.flow = testutil::MakeFlow(sc_.topo, sc_.host_a, sc_.host_b);
    p.src_host = sc_.host_a;
    p.dst_host = sc_.host_b;
    net_->InjectPacket(p, 0);
    net_->events().RunAll(100000);
  }

  testutil::LoopScenario sc_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<LoopDetector> detector_;
};

TEST_F(LoopDetection, FourHopLoopDetectedOnFirstPunt) {
  InstallLoop();
  Inject();
  ASSERT_EQ(detector_->detections().size(), 1u);
  const auto& d = detector_->detections()[0];
  EXPECT_EQ(d.punt_rounds, 1);
  // The repeated label is the S2-S3 link (pushed twice by S3).
  LinkLabelMap labels(&sc_.topo);
  EXPECT_EQ(d.repeated_label, labels.LabelOf(sc_.s2, sc_.s3));
  // Detection latency is dominated by one punt (~punt_latency).
  EXPECT_GE(d.detected_at, net_->config().punt_latency);
  EXPECT_LT(d.detected_at, net_->config().punt_latency + 10 * kNsPerMs);
}

TEST_F(LoopDetection, SixHopLoopNeedsSecondRound) {
  // Extend the loop: S2->S3->S4->S5->S2 is 4 switches; build a 6-hop loop
  // by adding two more switches between S5 and S2.
  Topology& t = sc_.topo;
  SwitchId s7 = t.AddSwitch(NodeRole::kAgg, -1, 6, "S7");
  SwitchId s8 = t.AddSwitch(NodeRole::kAgg, -1, 7, "S8");
  t.AddLink(sc_.s5, s7);
  t.AddLink(s7, s8);
  t.AddLink(s8, sc_.s2);

  NetworkConfig cfg;
  cfg.max_hops = 256;
  Network net(&sc_.topo, cfg);
  net.codec().SetGenericPushers({sc_.s3, sc_.s5, s8});
  LoopDetector det(&net);
  det.Attach();
  Router& r = net.router();
  r.SetStaticNextHops(sc_.s1, sc_.host_b, {sc_.s2});
  r.SetStaticNextHops(sc_.s2, sc_.host_b, {sc_.s3});
  r.SetStaticNextHops(sc_.s3, sc_.host_b, {sc_.s4});
  r.SetStaticNextHops(sc_.s4, sc_.host_b, {sc_.s5});
  r.SetStaticNextHops(sc_.s5, sc_.host_b, {s7});
  r.SetStaticNextHops(s7, sc_.host_b, {s8});
  r.SetStaticNextHops(s8, sc_.host_b, {sc_.s2});

  Packet p;
  p.flow = testutil::MakeFlow(sc_.topo, sc_.host_a, sc_.host_b);
  p.src_host = sc_.host_a;
  p.dst_host = sc_.host_b;
  net.InjectPacket(p, 0);
  net.events().RunAll(100000);

  ASSERT_EQ(det.detections().size(), 1u);
  EXPECT_GE(det.detections()[0].punt_rounds, 2);
  // Second round costs an extra punt + reinjection: strictly slower than a
  // first-round detection.
  EXPECT_GT(det.detections()[0].detected_at,
            net.config().punt_latency + net.config().reinject_latency);
  EXPECT_FALSE(det.long_path_events().empty());
}

TEST_F(LoopDetection, LongButLoopFreePathIsNotALoop) {
  // A loop-free but suspiciously long path: extend the chain with S7, S8,
  // S9 and a host C behind S9; samplers at S3, S5, S8 push three distinct
  // labels, so S9 punts — the controller must log a LongPathEvent, not a
  // loop detection.
  Topology& t = sc_.topo;
  SwitchId s7 = t.AddSwitch(NodeRole::kAgg, -1, 6, "S7");
  SwitchId s8 = t.AddSwitch(NodeRole::kAgg, -1, 7, "S8");
  SwitchId s9 = t.AddSwitch(NodeRole::kTor, -1, 8, "S9");
  t.AddLink(sc_.s5, s7);
  t.AddLink(s7, s8);
  t.AddLink(s8, s9);
  HostId host_c = t.AddHost(-1, 2, "C");
  t.AddLink(host_c, s9);

  Network net(&sc_.topo, NetworkConfig{});
  net.codec().SetGenericPushers({sc_.s3, sc_.s5, s8});
  LoopDetector det(&net);
  det.Attach();
  det.set_reinject(false);
  Router& r = net.router();
  r.SetStaticNextHops(sc_.s1, host_c, {sc_.s2});
  r.SetStaticNextHops(sc_.s2, host_c, {sc_.s3});
  r.SetStaticNextHops(sc_.s3, host_c, {sc_.s4});
  r.SetStaticNextHops(sc_.s4, host_c, {sc_.s5});
  r.SetStaticNextHops(sc_.s5, host_c, {s7});
  r.SetStaticNextHops(s7, host_c, {s8});
  r.SetStaticNextHops(s8, host_c, {s9});

  Packet p;
  p.flow = testutil::MakeFlow(sc_.topo, sc_.host_a, host_c);
  p.src_host = sc_.host_a;
  p.dst_host = host_c;
  net.InjectPacket(p, 0);
  net.events().RunAll(10000);

  EXPECT_TRUE(det.detections().empty());
  ASSERT_EQ(det.long_path_events().size(), 1u);
  EXPECT_EQ(det.long_path_events()[0].labels.size(), 3u);
}

TEST_F(LoopDetection, NoFalsePositiveOnHealthyPath) {
  Inject();  // default BFS routes, no loop
  EXPECT_TRUE(detector_->detections().empty());
  EXPECT_EQ(net_->stats().delivered, 1u);
}

}  // namespace
}  // namespace pathdump
