// Alarm intake pipeline (src/controller/alarm_pipeline.h) coverage:
//  * determinism: the log is sequence-ordered and byte-identical across
//    1/4/16 dispatch workers, with one or many producer threads;
//  * suppression-window dedup and its stats counter;
//  * backpressure: kDropNewest counts rejects, kBlock never loses alarms;
//  * Flush() semantics incl. reentrancy from a subscriber, and drain on
//    destruction;
//  * the per-agent reader/writer lock: concurrent queries into the SAME
//    agent while its data path ingests (this file runs under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/apps/blackhole.h"
#include "src/apps/path_conformance.h"
#include "src/controller/alarm_pipeline.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

Alarm MakeAlarm(HostId host, uint16_t port, SimTime at,
                AlarmReason reason = AlarmReason::kPoorPerf) {
  Alarm a;
  a.host = host;
  a.flow = FiveTuple{10, 20, port, 80, kProtoTcp};
  a.reason = reason;
  a.at = at;
  return a;
}

// --- Determinism across dispatch worker counts ---

TEST(AlarmPipelineTest, SingleProducerLogByteIdenticalAcrossDispatchWorkers) {
  auto run = [](size_t workers) {
    AlarmPipelineOptions opts;
    opts.dispatch_workers = workers;
    opts.max_batch = 16;  // force multiple batches
    AlarmPipeline pipe(opts);
    // A couple of subscribers so dispatch fan-out actually happens.
    std::atomic<uint64_t> sum{0};
    pipe.Subscribe([&sum](const Alarm& a) { sum += a.seq; });
    pipe.Subscribe([&sum](const Alarm& a) { sum += a.at >= 0 ? 1u : 0u; });
    for (int i = 0; i < 500; ++i) {
      pipe.Submit(MakeAlarm(HostId(i % 7), uint16_t(1000 + i), SimTime(i) * kNsPerMs));
    }
    pipe.Flush();
    return pipe.log();
  };
  std::vector<Alarm> base = run(1);
  ASSERT_EQ(base.size(), 500u);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].seq, i);
  }
  for (size_t workers : {size_t(4), size_t(16)}) {
    std::vector<Alarm> log = run(workers);
    EXPECT_EQ(log, base) << workers << " dispatch workers";
  }
}

TEST(AlarmPipelineTest, MultiProducerLogIsSequenceOrderedAndComplete) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  auto canonical = [](std::vector<Alarm> log) {
    // Producer interleaving is nondeterministic, so canonicalize by
    // (producer = host, index = at) before cross-worker comparison; seq
    // depends on interleaving and is wiped.
    for (Alarm& a : log) {
      a.seq = 0;
    }
    std::sort(log.begin(), log.end(), [](const Alarm& x, const Alarm& y) {
      return x.host != y.host ? x.host < y.host : x.at < y.at;
    });
    return log;
  };
  std::vector<Alarm> base;
  for (size_t workers : {size_t(1), size_t(4), size_t(16)}) {
    AlarmPipelineOptions opts;
    opts.dispatch_workers = workers;
    opts.queue_capacity = 64;  // keep producers bumping into backpressure
    AlarmPipeline pipe(opts);
    std::atomic<uint64_t> seen{0};
    pipe.Subscribe([&seen](const Alarm&) { ++seen; });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pipe, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          pipe.Submit(MakeAlarm(HostId(p), uint16_t(i), SimTime(i)));
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    pipe.Flush();
    const std::vector<Alarm>& log = pipe.log();
    ASSERT_EQ(log.size(), size_t(kProducers) * kPerProducer) << workers << " workers";
    EXPECT_EQ(seen.load(), log.size());
    // Sequence-ordered: seq is exactly the arrival total order.
    for (size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].seq, i);
    }
    // Per-producer FIFO: each producer's alarms appear in emission order.
    std::vector<SimTime> last(kProducers, -1);
    for (const Alarm& a : log) {
      EXPECT_GT(a.at, last[size_t(a.host)]);
      last[size_t(a.host)] = a.at;
    }
    EXPECT_EQ(pipe.stats().dropped, 0u);  // default kBlock never drops
    if (base.empty()) {
      base = canonical(log);
    } else {
      EXPECT_EQ(canonical(log), base) << workers << " workers";
    }
  }
}

TEST(AlarmPipelineTest, EverySubscriberSeesSequenceOrder) {
  AlarmPipelineOptions opts;
  opts.dispatch_workers = 4;
  opts.max_batch = 8;
  AlarmPipeline pipe(opts);
  constexpr int kSubscribers = 5;
  std::vector<std::vector<uint64_t>> seen(kSubscribers);
  for (int s = 0; s < kSubscribers; ++s) {
    pipe.Subscribe([&seen, s](const Alarm& a) { seen[size_t(s)].push_back(a.seq); });
  }
  for (int i = 0; i < 300; ++i) {
    pipe.Submit(MakeAlarm(1, uint16_t(i), SimTime(i)));
  }
  pipe.Flush();
  for (int s = 0; s < kSubscribers; ++s) {
    ASSERT_EQ(seen[size_t(s)].size(), 300u) << "subscriber " << s;
    for (size_t i = 0; i < seen[size_t(s)].size(); ++i) {
      EXPECT_EQ(seen[size_t(s)][i], i) << "subscriber " << s;
    }
  }
}

// --- Suppression window ---

TEST(AlarmPipelineTest, SuppressionWindowDedupsRepeats) {
  AlarmPipelineOptions opts;
  opts.suppression_window = kNsPerSec;
  AlarmPipeline pipe(opts);
  pipe.Submit(MakeAlarm(1, 1000, 0));                  // admitted
  pipe.Submit(MakeAlarm(1, 1000, kNsPerSec / 2));      // same key, in window
  pipe.Submit(MakeAlarm(1, 1001, kNsPerSec / 2));      // different flow
  pipe.Submit(MakeAlarm(2, 1000, kNsPerSec / 2));      // different host
  pipe.Submit(MakeAlarm(1, 1000, kNsPerSec / 2,
                        AlarmReason::kNoProgress));    // different reason
  pipe.Submit(MakeAlarm(1, 1000, 2 * kNsPerSec));      // window expired
  pipe.Submit(MakeAlarm(1, 1000, 2 * kNsPerSec + 1));  // new window
  pipe.Flush();
  ASSERT_EQ(pipe.log().size(), 5u);
  EXPECT_EQ(pipe.log()[0].at, 0);
  EXPECT_EQ(pipe.log()[4].at, 2 * kNsPerSec);
  AlarmPipelineStats st = pipe.stats();
  EXPECT_EQ(st.submitted, 7u);
  EXPECT_EQ(st.suppressed, 2u);
  EXPECT_EQ(st.delivered, 5u);
}

// --- Backpressure ---

TEST(AlarmPipelineTest, DropNewestPolicyCountsDrops) {
  AlarmPipelineOptions opts;
  opts.queue_capacity = 4;
  opts.max_batch = 4;
  opts.overflow = AlarmOverflowPolicy::kDropNewest;
  AlarmPipeline pipe(opts);
  std::promise<void> entered_p;
  std::promise<void> release_p;
  std::future<void> release_f = release_p.get_future();
  std::atomic<bool> entered{false};
  pipe.Subscribe([&](const Alarm&) {
    if (!entered.exchange(true)) {
      entered_p.set_value();
    }
    release_f.wait();
  });
  // Wedge the drain worker inside the subscriber...
  ASSERT_TRUE(pipe.Submit(MakeAlarm(1, 0, 0)));
  entered_p.get_future().wait();
  // ...then overflow the (4-slot) queue: exactly 4 accepted, 96 dropped.
  int accepted = 0;
  for (int i = 1; i <= 100; ++i) {
    accepted += pipe.Submit(MakeAlarm(1, uint16_t(i), SimTime(i))) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 4);
  release_p.set_value();
  pipe.Flush();
  AlarmPipelineStats st = pipe.stats();
  EXPECT_EQ(st.submitted, 5u);
  EXPECT_EQ(st.dropped, 96u);
  EXPECT_EQ(st.delivered, 5u);
  EXPECT_EQ(pipe.log().size(), 5u);
}

TEST(AlarmPipelineTest, BlockPolicyNeverDropsUnderStorm) {
  AlarmPipelineOptions opts;
  opts.queue_capacity = 2;  // tiny bound: producers must block, not lose
  opts.max_batch = 2;
  AlarmPipeline pipe(opts);
  std::atomic<uint64_t> seen{0};
  pipe.Subscribe([&seen](const Alarm&) { ++seen; });
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pipe, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(pipe.Submit(MakeAlarm(HostId(p), uint16_t(i), SimTime(i))));
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  pipe.Flush();
  EXPECT_EQ(pipe.log().size(), size_t(kProducers) * kPerProducer);
  EXPECT_EQ(seen.load(), size_t(kProducers) * kPerProducer);
  AlarmPipelineStats st = pipe.stats();
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.submitted, uint64_t(kProducers) * kPerProducer);
}

// --- Flush semantics ---

TEST(AlarmPipelineTest, FlushFromSubscriberDoesNotDeadlock) {
  AlarmPipeline pipe;
  std::atomic<bool> ran{false};
  pipe.Subscribe([&](const Alarm&) {
    pipe.Flush();  // reentrant: must return immediately, not deadlock
    ran = true;
  });
  pipe.Submit(MakeAlarm(1, 1000, 0));
  pipe.Flush();
  EXPECT_TRUE(ran.load());
}

TEST(AlarmPipelineTest, DestructionDrainsEverythingSubmitted) {
  std::atomic<uint64_t> seen{0};
  {
    AlarmPipeline pipe;
    pipe.Subscribe([&seen](const Alarm&) { ++seen; });
    for (int i = 0; i < 200; ++i) {
      pipe.Submit(MakeAlarm(1, uint16_t(i), SimTime(i)));
    }
    // No Flush: the destructor must deliver all 200.
  }
  EXPECT_EQ(seen.load(), 200u);
}

// --- Controller integration ---

TEST(AlarmPipelineTest, ControllerReconfigureCarriesSubscribersAndSinks) {
  Controller controller;
  std::atomic<int> seen{0};
  controller.SubscribeAlarms([&seen](const Alarm&) { ++seen; });
  AlarmHandler sink = controller.MakeAlarmSink();  // made BEFORE reconfigure

  AlarmPipelineOptions opts;
  opts.suppression_window = kNsPerSec;
  controller.ConfigureAlarmPipeline(opts);
  EXPECT_EQ(controller.alarm_pipeline().options().suppression_window, kNsPerSec);

  sink(MakeAlarm(1, 1000, 0));
  sink(MakeAlarm(1, 1000, 1));  // suppressed by the new window
  controller.FlushAlarms();
  EXPECT_EQ(seen.load(), 1);
  ASSERT_EQ(controller.alarm_log().size(), 1u);
  EXPECT_EQ(controller.alarm_log()[0].seq, 0u);
  EXPECT_EQ(controller.alarm_stats().suppressed, 1u);
}

// --- Alarm-driven apps on the pipeline ---

TEST(AlarmPipelineTest, BlackholeMonitorDiagnosesFromAlarm) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());
  BlackholeMonitor monitor(&controller, &fleet, &router);
  monitor.Start();

  // A sprayed flow expected on 4 ECMP paths; only 3 made it to the
  // destination TIB (a blackhole ate the 4th subflow).
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];
  FiveTuple flow = testutil::MakeFlow(topo, src, dst, 1000);
  auto paths = router.EcmpPaths(src, dst);
  ASSERT_EQ(paths.size(), 4u);
  for (size_t i = 1; i < paths.size(); ++i) {
    TibRecord r;
    r.flow = flow;
    r.path = CompactPath::FromPath(paths[i]);
    r.stime = 0;
    r.etime = kNsPerSec;
    r.bytes = 10000;
    r.pkts = 10;
    fleet.agent(dst).IngestRecord(r, r.etime);
  }
  fleet.agent(dst).RaiseAlarm(flow, AlarmReason::kNoProgress, {}, kNsPerSec);

  auto diagnoses = monitor.Diagnoses();  // flushes the pipeline
  EXPECT_EQ(monitor.alarms_seen(), 1u);
  ASSERT_EQ(diagnoses.size(), 1u);
  EXPECT_EQ(diagnoses[0].missing.size(), 1u);
  EXPECT_EQ(diagnoses[0].missing[0], paths[0]);
  EXPECT_FALSE(diagnoses[0].candidates.empty());
}

// --- Per-agent reader/writer lock (queries into the SAME agent) ---

TEST(AgentConcurrencyTest, ConcurrentQueriesDuringIngestAreSafe) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  HostId src = topo.hosts()[0];
  HostId dst = topo.hosts().back();
  EdgeAgent& agent = fleet.agent(dst);
  // Every ingested record violates the policy, so the data-path thread
  // also storms the alarm pipeline while the readers run.
  ConformancePolicy policy;
  policy.max_path_switches = 2;
  InstallPathConformance(agent, policy);
  // The §2.3 monitor's periodic body resets retx streaks mid-Tick; a
  // reader polls GetPoorTcpFlows concurrently (both touch retx_).
  agent.InstallPoorTcpMonitor(200 * kNsPerMs);

  constexpr int kRecords = 1500;
  Path path = router.EcmpPaths(src, dst)[0];
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kRecords; ++i) {
      TibRecord r;
      r.flow = testutil::MakeFlow(topo, src, dst, uint16_t(1000 + i % 50));
      r.path = CompactPath::FromPath(path);
      r.stime = SimTime(i);
      r.etime = SimTime(i) + kNsPerMs;
      r.bytes = 1000;
      r.pkts = 1;
      agent.IngestRecord(r, r.etime);
      // A retransmitting packet per record keeps the retx monitor hot and
      // periodically fires the poor-TCP query (timestamps stay inside the
      // idle timeout, so no trajectory eviction muddies the TIB count).
      Packet pkt;
      pkt.flow = r.flow;
      pkt.src_host = src;
      pkt.dst_host = dst;
      pkt.is_retx = true;
      agent.OnPacket(pkt, SimTime(i) * kNsPerMs);
    }
    done = true;
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> observed{0};
  for (int t = 0; t < 5; ++t) {
    readers.emplace_back([&, t] {
      LinkId any{kInvalidNode, kInvalidNode};
      FiveTuple probe = testutil::MakeFlow(topo, src, dst, 1000);
      while (!done.load()) {
        switch (t % 5) {
          case 0:
            observed += agent.GetPaths(probe, any, TimeRange::All()).size();
            break;
          case 1:
            observed += agent.GetFlows(any, TimeRange::All()).size();
            break;
          case 2:
            observed += agent.TopK(5, TimeRange::All()).items.size();
            break;
          case 3:
            observed += agent.GetPoorTcpFlows().size();
            break;
          default:
            observed += agent.GetCount(Flow{probe, {}}, TimeRange::All()).pkts;
            break;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) {
    t.join();
  }
  // Quiescent end state is exact: every record landed, every conformance
  // alarm logged (the poor-TCP monitor adds kPoorPerf alarms on top).
  EXPECT_EQ(agent.tib().size(), size_t(kRecords));
  size_t pc_fail = 0;
  for (const Alarm& a : controller.alarm_log()) {
    pc_fail += a.reason == AlarmReason::kPathConformance ? 1 : 0;
  }
  EXPECT_EQ(pc_fail, size_t(kRecords));
  EXPECT_EQ(controller.alarm_stats().dropped, 0u);
  EXPECT_EQ(agent.GetPaths(testutil::MakeFlow(topo, src, dst, 1000),
                           LinkId{kInvalidNode, kInvalidNode}, TimeRange::All())
                .size(),
            1u);
}

}  // namespace
}  // namespace pathdump
