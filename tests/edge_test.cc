#include <gtest/gtest.h>

#include "src/edge/edge_agent.h"
#include "src/edge/fleet.h"
#include "src/edge/packet_pipeline.h"
#include "src/edge/query.h"
#include "src/edge/tib.h"
#include "src/edge/trajectory_memory.h"
#include "src/netsim/network.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- CompactPath / TibRecord ---

TEST(CompactPathTest, RoundTrip) {
  Path p{3, 7, 12, 9, 4};
  CompactPath c = CompactPath::FromPath(p);
  EXPECT_EQ(c.len, 5);
  EXPECT_EQ(c.ToPath(), p);
}

TEST(CompactPathTest, ContainsQueries) {
  CompactPath c = CompactPath::FromPath({1, 2, 3});
  EXPECT_TRUE(c.ContainsSwitch(2));
  EXPECT_FALSE(c.ContainsSwitch(9));
  EXPECT_TRUE(c.ContainsDirectedLink(1, 2));
  EXPECT_TRUE(c.ContainsDirectedLink(2, 3));
  EXPECT_FALSE(c.ContainsDirectedLink(2, 1));
  EXPECT_FALSE(c.ContainsDirectedLink(1, 3));
}

TEST(CompactPathTest, WildcardLinkQueries) {
  CompactPath c = CompactPath::FromPath({1, 2, 3});
  EXPECT_TRUE(c.MatchesLinkQuery(LinkId{kInvalidNode, kInvalidNode}));  // (*, *)
  EXPECT_TRUE(c.MatchesLinkQuery(LinkId{kInvalidNode, 2}));             // (?, 2)
  EXPECT_TRUE(c.MatchesLinkQuery(LinkId{2, kInvalidNode}));             // (2, ?)
  EXPECT_FALSE(c.MatchesLinkQuery(LinkId{kInvalidNode, 1}));  // nothing enters 1
  EXPECT_FALSE(c.MatchesLinkQuery(LinkId{3, kInvalidNode}));  // nothing leaves 3
  EXPECT_TRUE(c.MatchesLinkQuery(LinkId{1, 2}));
  EXPECT_FALSE(c.MatchesLinkQuery(LinkId{3, 2}));
}

TEST(CompactPathTest, SingleSwitchPath) {
  CompactPath c = CompactPath::FromPath({5});
  EXPECT_TRUE(c.MatchesLinkQuery(LinkId{kInvalidNode, kInvalidNode}));
  EXPECT_FALSE(c.MatchesLinkQuery(LinkId{kInvalidNode, 5}));  // no entering link
}

// --- Tib ---

TibRecord MakeRecord(FiveTuple flow, Path path, SimTime s, SimTime e, uint64_t bytes,
                     uint32_t pkts) {
  TibRecord r;
  r.flow = flow;
  r.path = CompactPath::FromPath(path);
  r.stime = s;
  r.etime = e;
  r.bytes = bytes;
  r.pkts = pkts;
  return r;
}

TEST(TibTest, FlowIndexAndTimeFilter) {
  Tib tib;
  FiveTuple f1{1, 2, 10, 80, 6};
  FiveTuple f2{1, 2, 11, 80, 6};
  tib.Insert(MakeRecord(f1, {1, 2, 3}, 0, 100, 1000, 2));
  tib.Insert(MakeRecord(f1, {1, 4, 3}, 200, 300, 500, 1));
  tib.Insert(MakeRecord(f2, {1, 2, 3}, 0, 100, 700, 1));

  EXPECT_EQ(tib.RecordsOfFlow(f1, TimeRange::All()).size(), 2u);
  EXPECT_EQ(tib.RecordsOfFlow(f1, TimeRange{0, 150}).size(), 1u);
  EXPECT_EQ(tib.RecordsOfFlow(f1, TimeRange{150, 400}).size(), 1u);
  EXPECT_EQ(tib.RecordsOfFlow(f2, TimeRange::All()).size(), 1u);
  EXPECT_EQ(tib.RecordsOfFlow(FiveTuple{9, 9, 9, 9, 9}, TimeRange::All()).size(), 0u);
}

TEST(TibTest, ScanFallbackWithoutIndex) {
  TibOptions opt;
  opt.index_by_flow = false;
  Tib tib(opt);
  FiveTuple f1{1, 2, 10, 80, 6};
  tib.Insert(MakeRecord(f1, {1, 2, 3}, 0, 100, 1000, 2));
  EXPECT_EQ(tib.RecordsOfFlow(f1, TimeRange::All()).size(), 1u);
}

TEST(TibTest, LinkQueries) {
  Tib tib;
  FiveTuple f1{1, 2, 10, 80, 6};
  tib.Insert(MakeRecord(f1, {1, 2, 3}, 0, 100, 1000, 2));
  tib.Insert(MakeRecord(f1, {1, 4, 3}, 0, 100, 500, 1));
  EXPECT_EQ(tib.RecordsOnLink(LinkId{1, 2}, TimeRange::All()).size(), 1u);
  EXPECT_EQ(tib.RecordsOnLink(LinkId{kInvalidNode, 3}, TimeRange::All()).size(), 2u);
  EXPECT_EQ(tib.RecordsOnLink(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All()).size(), 2u);
  EXPECT_EQ(tib.RecordsOnLink(LinkId{1, 2}, TimeRange{200, 300}).size(), 0u);
}

TEST(TibTest, ApproxBytesGrows) {
  Tib tib;
  size_t empty = tib.ApproxBytes();
  for (int i = 0; i < 1000; ++i) {
    FiveTuple f{1, 2, uint16_t(i), 80, 6};
    tib.Insert(MakeRecord(f, {1, 2, 3}, 0, 100, 100, 1));
  }
  EXPECT_GT(tib.ApproxBytes(), empty + 1000 * sizeof(TibRecord) / 2);
  tib.Clear();
  EXPECT_EQ(tib.size(), 0u);
}

// --- TrajectoryMemory ---

Packet MakePacket(FiveTuple flow, std::vector<LinkLabel> tags, uint32_t bytes = 1000,
                  bool fin = false) {
  Packet p;
  p.flow = flow;
  p.tags = std::move(tags);
  p.size_bytes = bytes;
  p.fin = fin;
  return p;
}

TEST(TrajectoryMemoryTest, AggregatesPerPath) {
  TrajectoryMemory mem(5 * kNsPerSec);
  FiveTuple f{1, 2, 10, 80, 6};
  mem.OnPacket(MakePacket(f, {7}), 0);
  mem.OnPacket(MakePacket(f, {7}), 10);
  mem.OnPacket(MakePacket(f, {8}), 20);  // same flow, different path
  EXPECT_EQ(mem.size(), 2u);

  auto snap = mem.Snapshot();
  uint64_t total_bytes = 0;
  for (const auto& r : snap) {
    total_bytes += r.bytes;
  }
  EXPECT_EQ(total_bytes, 3000u);
  EXPECT_EQ(mem.total_updates(), 3u);
}

TEST(TrajectoryMemoryTest, FinTriggersEvictionOnSweep) {
  TrajectoryMemory mem(5 * kNsPerSec);
  FiveTuple f{1, 2, 10, 80, 6};
  mem.OnPacket(MakePacket(f, {7}), 0);
  mem.OnPacket(MakePacket(f, {7}, 500, /*fin=*/true), 100);

  std::vector<TrajectoryMemory::Record> evicted;
  mem.Sweep(200, [&](const TrajectoryMemory::Record& r) { evicted.push_back(r); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_TRUE(evicted[0].closed);
  EXPECT_EQ(evicted[0].bytes, 1500u);
  EXPECT_EQ(evicted[0].pkts, 2u);
  EXPECT_EQ(evicted[0].stime, 0);
  EXPECT_EQ(evicted[0].etime, 100);
  EXPECT_EQ(mem.size(), 0u);
}

TEST(TrajectoryMemoryTest, IdleTimeoutEviction) {
  TrajectoryMemory mem(5 * kNsPerSec);
  FiveTuple f{1, 2, 10, 80, 6};
  mem.OnPacket(MakePacket(f, {7}), 0);
  int evicted = 0;
  mem.Sweep(4 * kNsPerSec, [&](const auto&) { ++evicted; });
  EXPECT_EQ(evicted, 0) << "not yet idle long enough";
  mem.Sweep(5 * kNsPerSec, [&](const auto&) { ++evicted; });
  EXPECT_EQ(evicted, 1);
}

TEST(TrajectoryMemoryTest, RstAlsoCloses) {
  TrajectoryMemory mem;
  FiveTuple f{1, 2, 10, 80, 6};
  Packet p = MakePacket(f, {7});
  p.rst = true;
  mem.OnPacket(p, 0);
  int evicted = 0;
  mem.Sweep(1, [&](const auto&) { ++evicted; });
  EXPECT_EQ(evicted, 1);
}

TEST(TrajectoryMemoryTest, FlushEvictsEverything) {
  TrajectoryMemory mem;
  for (uint16_t i = 0; i < 10; ++i) {
    mem.OnPacket(MakePacket(FiveTuple{1, 2, i, 80, 6}, {i}), 0);
  }
  int evicted = 0;
  mem.Flush([&](const auto&) { ++evicted; });
  EXPECT_EQ(evicted, 10);
  EXPECT_EQ(mem.size(), 0u);
}

// --- QueryResult serialization + merge ---

TEST(QueryResultTest, SizesMonotone) {
  FlowSizeHistogram small;
  small.bins[0] = 1;
  FlowSizeHistogram big;
  for (int i = 0; i < 100; ++i) {
    big.bins[i] = 1;
  }
  EXPECT_LT(SerializedBytes(QueryResult{small}), SerializedBytes(QueryResult{big}));
  EXPECT_GT(SerializedBytes(QueryResult{std::monostate{}}), 0u);
}

TEST(QueryResultTest, HistogramMerge) {
  FlowSizeHistogram a;
  a.bins[0] = 2;
  a.bins[1] = 1;
  FlowSizeHistogram b;
  b.bins[1] = 3;
  b.bins[2] = 1;
  QueryResult acc = a;
  MergeQueryResult(acc, QueryResult{b});
  const auto& m = std::get<FlowSizeHistogram>(acc);
  EXPECT_EQ(m.bins.at(0), 2);
  EXPECT_EQ(m.bins.at(1), 4);
  EXPECT_EQ(m.bins.at(2), 1);
}

TEST(QueryResultTest, TopKMergeTrims) {
  TopKFlows a;
  a.k = 2;
  a.items = {{10, FiveTuple{1, 2, 1, 1, 6}}, {5, FiveTuple{1, 2, 2, 1, 6}}};
  TopKFlows b;
  b.k = 2;
  b.items = {{7, FiveTuple{1, 2, 3, 1, 6}}};
  QueryResult acc = a;
  MergeQueryResult(acc, QueryResult{b});
  const auto& t = std::get<TopKFlows>(acc);
  ASSERT_EQ(t.items.size(), 2u);
  EXPECT_EQ(t.items[0].first, 10u);
  EXPECT_EQ(t.items[1].first, 7u);
}

TEST(QueryResultTest, MonostateAccAdoptsInput) {
  QueryResult acc;
  CountSummary c{100, 2};
  MergeQueryResult(acc, QueryResult{c});
  EXPECT_EQ(std::get<CountSummary>(acc).bytes, 100u);
  MergeQueryResult(acc, QueryResult{CountSummary{50, 1}});
  EXPECT_EQ(std::get<CountSummary>(acc).bytes, 150u);
  EXPECT_EQ(std::get<CountSummary>(acc).pkts, 3u);
}

// --- EdgeAgent end-to-end over the per-packet network ---

class EdgeAgentPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    net_ = std::make_unique<Network>(&topo_, NetworkConfig{});
    fleet_ = std::make_unique<AgentFleet>(&topo_, &net_->codec());
    fleet_->AttachTo(*net_);
  }

  // Sends `bytes` from src to dst as a segmented TCP flow ending in FIN.
  FiveTuple SendFlow(HostId src, HostId dst, uint64_t bytes, SimTime at,
                     uint16_t src_port = 10000) {
    FiveTuple flow = testutil::MakeFlow(topo_, src, dst, src_port);
    auto pkts = SegmentFlowHelper(flow, src, dst, bytes);
    SimTime t = at;
    for (Packet& p : pkts) {
      net_->InjectPacket(p, t);
      t += 10 * kNsPerUs;
    }
    return flow;
  }

  static std::vector<Packet> SegmentFlowHelper(const FiveTuple& flow, HostId src, HostId dst,
                                               uint64_t bytes) {
    std::vector<Packet> out;
    uint64_t remaining = bytes;
    uint32_t seq = 0;
    while (remaining > 0) {
      uint32_t sz = uint32_t(std::min<uint64_t>(remaining, kDefaultMss));
      Packet p;
      p.flow = flow;
      p.src_host = src;
      p.dst_host = dst;
      p.seq = seq++;
      p.size_bytes = std::max(sz, kMinPacketBytes);
      remaining -= sz;
      p.fin = remaining == 0;
      out.push_back(p);
    }
    return out;
  }

  Topology topo_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<AgentFleet> fleet_;
};

TEST_F(EdgeAgentPipeline, FlowAppearsInTibAfterFin) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  FiveTuple flow = SendFlow(src, dst, 10000, 0);
  net_->events().RunAll();
  EdgeAgent& agent = fleet_->agent(dst);
  agent.FlushAll(net_->events().now());

  ASSERT_EQ(agent.tib().size(), 1u);
  const TibRecord rec = agent.tib().record(0).value();
  EXPECT_EQ(rec.flow, flow);
  EXPECT_EQ(rec.pkts, 7u);  // ceil(10000/1460)
  EXPECT_GE(rec.bytes, 10000u);
  EXPECT_EQ(rec.path.len, 5);
  EXPECT_EQ(rec.path.sw[0], topo_.TorOfHost(src));
  EXPECT_EQ(rec.path.sw[4], topo_.TorOfHost(dst));
}

TEST_F(EdgeAgentPipeline, HostApiGetters) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  FiveTuple flow = SendFlow(src, dst, 20000, 0);
  net_->events().RunAll();
  EdgeAgent& agent = fleet_->agent(dst);
  agent.FlushAll(net_->events().now());

  LinkId any{kInvalidNode, kInvalidNode};
  auto flows = agent.GetFlows(any, TimeRange::All());
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].id, flow);

  auto paths = agent.GetPaths(flow, any, TimeRange::All());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 5u);

  CountSummary c = agent.GetCount(Flow{flow, paths[0]}, TimeRange::All());
  EXPECT_GE(c.bytes, 20000u);
  EXPECT_EQ(c.pkts, 14u);

  // Count on a wrong path is zero.
  Path wrong = paths[0];
  std::swap(wrong[1], wrong[3]);
  if (wrong != paths[0]) {
    CountSummary zero = agent.GetCount(Flow{flow, wrong}, TimeRange::All());
    EXPECT_EQ(zero.bytes, 0u);
  }

  EXPECT_GT(agent.GetDuration(Flow{flow, {}}, TimeRange::All()), 0);
}

TEST_F(EdgeAgentPipeline, GetFlowsFiltersByLink) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  SendFlow(src, dst, 5000, 0);
  net_->events().RunAll();
  EdgeAgent& agent = fleet_->agent(dst);
  agent.FlushAll(net_->events().now());

  auto paths = agent.GetPaths(agent.tib().record(0)->flow, LinkId{kInvalidNode, kInvalidNode},
                              TimeRange::All());
  ASSERT_EQ(paths.size(), 1u);
  LinkId used{paths[0][1], paths[0][2]};
  EXPECT_EQ(agent.GetFlows(used, TimeRange::All()).size(), 1u);
  LinkId unused{paths[0][2], paths[0][1]};  // reverse direction unused
  EXPECT_EQ(agent.GetFlows(unused, TimeRange::All()).size(), 0u);
}

TEST_F(EdgeAgentPipeline, PoorTcpFlowsAndAlarms) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  EdgeAgent& dst_agent = fleet_->agent(dst);

  std::vector<Alarm> alarms;
  dst_agent.SetAlarmHandler([&](const Alarm& a) { alarms.push_back(a); });

  FiveTuple flow = testutil::MakeFlow(topo_, src, dst);
  // Three consecutive retransmitted segments (same seq, is_retx).
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    p.seq = 5;
    p.is_retx = true;
    net_->InjectPacket(p, SimTime(i) * kNsPerMs);
  }
  net_->events().RunAll();

  auto poor = dst_agent.GetPoorTcpFlows(3);
  ASSERT_EQ(poor.size(), 1u);
  EXPECT_EQ(poor[0], flow);

  // The §2.3 monitoring query raises POOR_PERF for each poor flow.
  dst_agent.InstallQuery(0, [](EdgeAgent& a, SimTime now) {
    for (const FiveTuple& f : a.GetPoorTcpFlows(3)) {
      a.RaiseAlarm(f, AlarmReason::kPoorPerf, {}, now);
    }
  });
  dst_agent.Tick(net_->events().now() + kNsPerSec);
  ASSERT_FALSE(alarms.empty());
  EXPECT_EQ(alarms[0].reason, AlarmReason::kPoorPerf);
  EXPECT_EQ(alarms[0].flow, flow);

  // Forward progress clears the consecutive counter.
  Packet ok;
  ok.flow = flow;
  ok.src_host = src;
  ok.dst_host = dst;
  ok.seq = 6;
  net_->InjectPacket(ok, net_->events().now() + kNsPerSec);
  net_->events().RunAll();
  EXPECT_TRUE(dst_agent.GetPoorTcpFlows(3).empty());
}

TEST_F(EdgeAgentPipeline, RecordHooksFire) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  EdgeAgent& agent = fleet_->agent(dst);
  int fired = 0;
  int id = agent.AddRecordHook([&](EdgeAgent&, const TibRecord&, SimTime) { ++fired; });
  SendFlow(src, dst, 1000, 0);
  net_->events().RunAll();
  agent.FlushAll(net_->events().now());
  EXPECT_EQ(fired, 1);
  agent.RemoveRecordHook(id);
  SendFlow(src, dst, 1000, net_->events().now() + kNsPerSec, 10001);
  net_->events().RunAll();
  agent.FlushAll(net_->events().now());
  EXPECT_EQ(fired, 1);
}

TEST_F(EdgeAgentPipeline, InstalledPeriodicQueryRunsAtPeriod) {
  EdgeAgent& agent = fleet_->agent(topo_.hosts().front());
  int runs = 0;
  int id = agent.InstallQuery(kNsPerSec, [&](EdgeAgent&, SimTime) { ++runs; });
  agent.Tick(0);
  agent.Tick(kNsPerMs);  // within the period: must not run again
  EXPECT_EQ(runs, 1);
  agent.Tick(kNsPerSec + 1);
  EXPECT_EQ(runs, 2);
  agent.UninstallQuery(id);
  agent.Tick(3 * kNsPerSec);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(agent.InstalledQueryCount(), 0u);
}

TEST_F(EdgeAgentPipeline, TrajectoryCacheHitsOnRepeatedPath) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  EdgeAgent& agent = fleet_->agent(dst);
  SendFlow(src, dst, 1000, 0, 10000);
  SendFlow(src, dst, 1000, kNsPerMs, 10000);  // same 5-tuple -> same path
  net_->events().RunAll();
  agent.FlushAll(net_->events().now());
  EXPECT_GE(agent.cache_stats().hits + agent.cache_stats().misses, 1u);
  EXPECT_EQ(agent.decode_failures(), 0u);
  // FlushAll drained the trajectory memory into the TIB.
  EXPECT_TRUE(agent.MemorySnapshot().empty());
}

TEST_F(EdgeAgentPipeline, BogusTagsRaiseInfeasiblePathAlarm) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  EdgeAgent& agent = fleet_->agent(dst);
  std::vector<Alarm> alarms;
  agent.SetAlarmHandler([&](const Alarm& a) { alarms.push_back(a); });

  // Hand the agent a packet whose trajectory contradicts the topology (a
  // switch inserted a wrong ID, §2.4).
  Packet p;
  p.flow = testutil::MakeFlow(topo_, src, dst);
  p.src_host = src;
  p.dst_host = dst;
  p.fin = true;
  p.tags = {kMaxVlanLabel};  // out of any valid label range for k=4
  agent.OnPacket(p, 0);
  agent.FlushAll(kNsPerSec);

  EXPECT_EQ(agent.tib().size(), 0u);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].reason, AlarmReason::kInfeasiblePath);
  EXPECT_EQ(agent.decode_failures(), 1u);
}

TEST_F(EdgeAgentPipeline, FlowSizeDistributionAndTopK) {
  HostId src = topo_.hosts().front();
  HostId dst = topo_.hosts().back();
  EdgeAgent& agent = fleet_->agent(dst);
  SendFlow(src, dst, 5000, 0, 10001);
  SendFlow(src, dst, 50000, 0, 10002);
  SendFlow(src, dst, 500000, 0, 10003);
  net_->events().RunAll();
  agent.FlushAll(net_->events().now());

  FlowSizeHistogram h =
      agent.FlowSizeDistribution(LinkId{kInvalidNode, kInvalidNode}, TimeRange::All(), 10000);
  int64_t total = 0;
  for (auto& [bin, count] : h.bins) {
    total += count;
  }
  EXPECT_EQ(total, 3);

  TopKFlows top = agent.TopK(2, TimeRange::All());
  ASSERT_EQ(top.items.size(), 2u);
  EXPECT_GE(top.items[0].first, top.items[1].first);
  EXPECT_GE(top.items[0].first, 500000u);
}

// --- PacketPipeline (Fig. 13 machinery) ---

TEST(PacketPipelineTest, PathDumpStripsTagsBaselineDoesNot) {
  PacketPipeline pathdump(true);
  PacketPipeline vanilla(false);
  Packet p;
  p.flow = FiveTuple{1, 2, 3, 4, 6};
  p.tags = {5, 9};
  Packet q = p;
  pathdump.Process(p, 0);
  vanilla.Process(q, 0);
  EXPECT_TRUE(p.tags.empty()) << "PathDump must strip trajectory headers";
  EXPECT_EQ(q.tags.size(), 2u);
  EXPECT_EQ(pathdump.memory().size(), 1u);
  EXPECT_EQ(vanilla.memory().size(), 0u);
}

}  // namespace
}  // namespace pathdump
