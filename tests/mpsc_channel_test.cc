// Shared bounded-MPSC channel (src/common/mpsc_channel.h) — the one
// implementation behind AlarmPipeline and SubscriptionManager intake.
// This file is the channel's own adversarial matrix, so the subsystem
// tests no longer have to re-prove queue semantics independently:
//
//  * multi-producer sequence stamping is a gapless total order and the
//    consumer sees batches in that order;
//  * kBlock backpressure never drops under a producer storm that dwarfs
//    the queue bound;
//  * kDropNewest counts rejects exactly (accepted + dropped = attempts);
//  * Flush() from inside the drain (and from a consumer-side worker via
//    ReentrancyGuard) returns instead of deadlocking — per instance:
//    flushing channel A from inside channel B still waits;
//  * destruction drains everything already accepted;
//  * Reconfigure() carries queued items and cumulative stats over.
//
// Runs under ThreadSanitizer in CI (ctest -L tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mpsc_channel.h"

namespace pathdump {
namespace {

// A minimal stampable item: the channel requires a mutable `seq`.
struct Item {
  uint64_t seq = 0;
  int producer = 0;
  int value = 0;
};

TEST(MpscChannelTest, MultiProducerSeqIsGaplessAndConsumerSeesSeqOrder) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<Item> consumed;
  {
    MpscChannel<Item> ch({.capacity = 64, .max_batch = 16},
                         [&consumed](std::vector<Item>& batch) {
                           for (Item& it : batch) {
                             consumed.push_back(it);
                           }
                         });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&ch, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          EXPECT_TRUE(ch.Submit(Item{0, p, i}));
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    ch.Flush();
    MpscChannelStats st = ch.stats();
    EXPECT_EQ(st.submitted, uint64_t(kProducers) * kPerProducer);
    EXPECT_EQ(st.processed, st.submitted);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_GE(st.batches, st.submitted / 16);  // max_batch respected
    EXPECT_LE(st.max_batch, 16u);
  }
  // seq is exactly the arrival total order, delivered gaplessly in order.
  ASSERT_EQ(consumed.size(), size_t(kProducers) * kPerProducer);
  for (size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i].seq, i);
  }
  // Per-producer FIFO: each producer's items keep their emission order.
  std::vector<int> last(kProducers, -1);
  for (const Item& it : consumed) {
    EXPECT_GT(it.value, last[size_t(it.producer)]);
    last[size_t(it.producer)] = it.value;
  }
}

TEST(MpscChannelTest, BlockPolicyStormNeverDrops) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  std::atomic<uint64_t> consumed{0};
  MpscChannel<Item> ch({.capacity = 8, .max_batch = 4},  // tiny bound, huge storm
                       [&consumed](std::vector<Item>& batch) { consumed += batch.size(); });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(ch.Submit(Item{0, p, i}));
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  ch.Flush();
  MpscChannelStats st = ch.stats();
  EXPECT_EQ(st.submitted, uint64_t(kProducers) * kPerProducer);
  EXPECT_EQ(consumed.load(), st.submitted);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_GT(st.blocked_enqueues, 0u);  // the storm did hit the bound
}

TEST(MpscChannelTest, DropNewestCountsRejectsExactly) {
  std::atomic<bool> release{false};
  std::atomic<uint64_t> consumed{0};
  MpscChannel<Item> ch({.capacity = 4, .max_batch = 4, .overflow = MpscOverflowPolicy::kDropNewest},
                       [&](std::vector<Item>& batch) {
                         // Park the drain so the queue stays full while we
                         // hammer Submit.
                         while (!release.load(std::memory_order_acquire)) {
                           std::this_thread::sleep_for(std::chrono::milliseconds(1));
                         }
                         consumed += batch.size();
                       });
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (int i = 0; i < 200; ++i) {
    if (ch.Submit(Item{0, 0, i})) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  release.store(true, std::memory_order_release);
  ch.Flush();
  MpscChannelStats st = ch.stats();
  EXPECT_EQ(st.submitted, accepted);
  EXPECT_EQ(st.dropped, rejected);
  EXPECT_EQ(consumed.load(), accepted);
  EXPECT_EQ(st.submitted + st.dropped, 200u);
}

TEST(MpscChannelTest, FlushFromInsideDrainReturnsImmediately) {
  std::atomic<uint64_t> reentrant_flushes{0};
  std::unique_ptr<MpscChannel<Item>> ch;
  ch = std::make_unique<MpscChannel<Item>>(
      MpscChannelOptions{.capacity = 8, .max_batch = 2}, [&](std::vector<Item>& batch) {
        // A consumer calling Flush() on its own channel must not
        // deadlock (AlarmPipeline subscribers read alarm_log, which
        // flushes).
        ch->Flush();
        reentrant_flushes += batch.size();
      });
  for (int i = 0; i < 50; ++i) {
    ch->Submit(Item{0, 0, i});
  }
  ch->Flush();
  EXPECT_EQ(reentrant_flushes.load(), 50u);
}

TEST(MpscChannelTest, ReentrancyIsPerInstanceAndGuardCoversWorkers) {
  // From inside channel B's drain, a Flush on channel A must still WAIT
  // (only A's own drain may skip) — per-instance reentrancy.
  std::atomic<uint64_t> a_consumed{0};
  MpscChannel<Item> a({.capacity = 8, .max_batch = 8},
                      [&](std::vector<Item>& batch) { a_consumed += batch.size(); });
  std::atomic<bool> b_saw_a_flushed{false};
  MpscChannel<Item> b({.capacity = 8, .max_batch = 8}, [&](std::vector<Item>& batch) {
    (void)batch;
    a.Flush();  // must block until A's queue is drained, then return
    b_saw_a_flushed.store(a_consumed.load() == 10, std::memory_order_release);
  });
  for (int i = 0; i < 10; ++i) {
    a.Submit(Item{0, 0, i});
  }
  b.Submit(Item{0, 0, 0});
  b.Flush();
  EXPECT_TRUE(b_saw_a_flushed.load());

  // A worker thread holding a ReentrancyGuard skips the wait — the
  // dispatch-pool pattern AlarmPipeline uses for subscriber fan-out.
  std::thread worker([&a] {
    MpscChannel<Item>::ReentrancyGuard inside(a);
    a.Flush();  // returns immediately even though it is not the drain
  });
  worker.join();
}

TEST(MpscChannelTest, DestructionDrainsEverythingAccepted) {
  std::vector<Item> consumed;
  {
    MpscChannel<Item> ch({.capacity = 1024, .max_batch = 7},
                         [&consumed](std::vector<Item>& batch) {
                           for (Item& it : batch) {
                             consumed.push_back(it);
                           }
                         });
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(ch.Submit(Item{0, 0, i}));
    }
    // No Flush: the destructor must deliver all 600.
  }
  ASSERT_EQ(consumed.size(), 600u);
  for (size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i].seq, i);
  }
}

TEST(MpscChannelTest, ReconfigureCarriesQueueAndStatsOver) {
  std::atomic<bool> release{false};
  std::atomic<uint64_t> consumed{0};
  MpscChannel<Item> ch({.capacity = 4, .max_batch = 2, .overflow = MpscOverflowPolicy::kDropNewest},
                       [&](std::vector<Item>& batch) {
                         while (!release.load(std::memory_order_acquire)) {
                           std::this_thread::sleep_for(std::chrono::milliseconds(1));
                         }
                         consumed += batch.size();
                       });
  // Fill past the bound so some submissions drop.
  uint64_t accepted = 0;
  for (int i = 0; i < 32; ++i) {
    if (ch.Submit(Item{0, 0, i})) {
      ++accepted;
    }
  }
  MpscChannelStats before = ch.stats();
  EXPECT_GT(before.dropped, 0u);
  EXPECT_EQ(before.submitted, accepted);

  // Grow the queue and switch to kBlock: queued items and counters must
  // carry over, and new submissions land in the larger bound.
  ch.Reconfigure({.capacity = 1024, .max_batch = 64, .overflow = MpscOverflowPolicy::kBlock});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ch.Submit(Item{0, 0, 1000 + i}));
  }
  release.store(true, std::memory_order_release);
  ch.Flush();
  MpscChannelStats after = ch.stats();
  EXPECT_EQ(after.submitted, accepted + 100);   // cumulative, not reset
  EXPECT_EQ(after.dropped, before.dropped);     // carried over
  EXPECT_EQ(after.processed, after.submitted);  // nothing queued was lost
  EXPECT_EQ(consumed.load(), accepted + 100);
  EXPECT_LE(after.max_batch, 64u);
}

}  // namespace
}  // namespace pathdump
