// Failure-injection suites: silent drops at swept rates, combined faults,
// blackholes at every layer, live-memory queries during incidents, and the
// installable TCP monitor.

#include <gtest/gtest.h>

#include "src/apps/blackhole.h"
#include "src/apps/silent_drop.h"
#include "src/controller/controller.h"
#include "src/controller/loop_detector.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Silent drop rate sweep through the per-packet switch ---

class DropRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropRateSweep, DeliveredFractionTracksRate) {
  double rate = GetParam();
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();

  // Discover the flow's path, fault its first switch hop.
  Path taken;
  net.SetHostSink(dst, [&](const Packet& p, SimTime) { taken = p.trace; });
  Packet probe;
  probe.flow = testutil::MakeFlow(topo, src, dst);
  probe.src_host = src;
  probe.dst_host = dst;
  net.InjectPacket(probe, 0);
  net.events().RunAll();
  ASSERT_FALSE(taken.empty());
  net.switch_at(taken[0]).SetSilentDropRate(taken[1], rate);

  int delivered = 0;
  net.SetHostSink(dst, [&](const Packet&, SimTime) { ++delivered; });
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    Packet p = probe;
    p.seq = uint32_t(i + 1);
    net.InjectPacket(p, kNsPerSec + SimTime(i) * kNsPerUs);
  }
  net.events().RunAll();
  EXPECT_NEAR(double(delivered) / n, 1.0 - rate, 0.03);
  // Silent drops never touch the reported counter.
  EXPECT_EQ(net.switch_at(taken[0]).counters().drops_reported, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropRateSweep, ::testing::Values(0.01, 0.05, 0.2, 0.5));

// --- Combined failure: a link-down detour AND a silent dropper elsewhere.
// The detour must still decode; the dropper must still be localizable. ---

TEST(CombinedFailures, DetourDecodesWhileDropperIsLocalized) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());
  SilentDropDebugger debugger(&controller, &fleet);
  debugger.Start();

  const FatTreeMeta& m = *topo.fat_tree();
  // Fault 1: link down in pod 3 (handled by routing failover).
  router.link_state().SetDown(m.agg[3][0], m.tor[3][0]);
  // Fault 2: silent 3% dropper on agg0->core0.
  FluidConfig cfg;
  cfg.seed = 21;
  FluidSimulation fluid(&topo, &router, cfg);
  fluid.AddSilentDrop(m.agg[0][0], m.core[0], 0.03);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 25;
  params.duration = 20 * kNsPerSec;
  params.seed = 22;
  fluid.Run(gen.Generate(params), &fleet, controller.MakeAlarmSink());

  // Dropper localized despite the concurrent detours.
  auto acc = debugger.Accuracy({{m.agg[0][0], m.core[0]}});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);

  // And flows forced through the broken down-link took 7-switch detours
  // that landed decodable in the TIBs (fluid uses the router's failover
  // paths through EcmpPaths, so cross-check with the per-packet engine).
  Network net(&topo, NetworkConfig{});
  net.router().link_state().SetDown(m.agg[3][0], m.tor[3][0]);
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[3][0])[0];
  bool detour_checked = false;
  net.SetHostSink(dst, [&](const Packet& pkt, SimTime) {
    auto decoded = net.codec().Decode(pkt.src_host, pkt.dst_host, pkt.dscp, pkt.tags);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, pkt.trace);
    if (pkt.trace.size() == 7) {
      detour_checked = true;
    }
  });
  for (uint16_t port = 0; port < 32; ++port) {
    Packet p;
    p.flow = testutil::MakeFlow(topo, src, dst, uint16_t(30000 + port));
    p.src_host = src;
    p.dst_host = dst;
    net.InjectPacket(p, SimTime(port) * kNsPerUs);
  }
  net.events().RunAll();
  EXPECT_TRUE(detour_checked) << "no flow crossed the broken down-link";
}

// --- Blackhole coverage at each layer of the spray path set ---

class BlackholeLayer : public ::testing::TestWithParam<int> {};

TEST_P(BlackholeLayer, CandidatesAlwaysCoverTheFault) {
  // Parameter = index of the path link that silently eats one subflow:
  // 0: tor->agg (kills 2 subflows), 1: agg->core (kills 1),
  // 2: core->agg (kills 1), 3: agg->tor (kills 2).
  int fault_hop = GetParam();
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId src = topo.HostsOfTor(m.tor[0][0])[0];
  HostId dst = topo.HostsOfTor(m.tor[1][0])[0];
  EdgeAgent agent(dst, &topo, &codec);
  FiveTuple flow = testutil::MakeFlow(topo, src, dst);

  std::vector<Path> all = router.EcmpPaths(src, dst);
  const Path& victim = all[0];
  NodeId fa = victim[size_t(fault_hop)];
  NodeId fb = victim[size_t(fault_hop) + 1];

  // Subflows whose path crosses the faulty directed link never arrive.
  std::vector<Path> observed;
  int missing = 0;
  for (const Path& p : all) {
    bool dead = false;
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == fa && p[i + 1] == fb) {
        dead = true;
      }
    }
    if (dead) {
      ++missing;
      continue;
    }
    TibRecord rec;
    rec.flow = flow;
    rec.path = CompactPath::FromPath(p);
    rec.stime = 0;
    rec.etime = 100;
    rec.bytes = 25000;
    rec.pkts = 17;
    agent.IngestRecord(rec, 100);
    observed.push_back(p);
  }
  ASSERT_GT(missing, 0);

  BlackholeDiagnosis d = DiagnoseBlackhole(router, agent, flow, src, dst, TimeRange::All());
  EXPECT_EQ(int(d.missing.size()), missing);
  // The candidate set must contain at least one endpoint of the fault.
  bool covered = false;
  for (SwitchId s : d.candidates) {
    if (s == fa || s == fb) {
      covered = true;
    }
  }
  EXPECT_TRUE(covered) << "candidates miss the faulty link " << topo.NameOf(fa) << "->"
                       << topo.NameOf(fb);
  // And it must be a strict reduction of the full 10-switch search space.
  EXPECT_LT(d.candidates.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Hops, BlackholeLayer, ::testing::Range(0, 4));

// --- Concurrent loops: the detector separates flows ---

TEST(LoopDetectorConcurrency, TwoFlowsTwoDetections) {
  testutil::LoopScenario sc = testutil::BuildLoopScenario();
  NetworkConfig cfg;
  cfg.max_hops = 256;
  Network net(&sc.topo, cfg);
  net.codec().SetGenericPushers({sc.s3, sc.s5});
  LoopDetector det(&net);
  det.Attach();
  Router& r = net.router();
  r.SetStaticNextHops(sc.s1, sc.host_b, {sc.s2});
  r.SetStaticNextHops(sc.s2, sc.host_b, {sc.s3});
  r.SetStaticNextHops(sc.s3, sc.host_b, {sc.s4});
  r.SetStaticNextHops(sc.s4, sc.host_b, {sc.s5});
  r.SetStaticNextHops(sc.s5, sc.host_b, {sc.s2});

  for (uint16_t port : {100, 200}) {
    Packet p;
    p.flow = testutil::MakeFlow(sc.topo, sc.host_a, sc.host_b, port);
    p.src_host = sc.host_a;
    p.dst_host = sc.host_b;
    net.InjectPacket(p, SimTime(port) * kNsPerUs);
  }
  net.events().RunAll(100000);
  ASSERT_EQ(det.detections().size(), 2u);
  EXPECT_NE(det.detections()[0].flow, det.detections()[1].flow);
}

// --- Live trajectory-memory queries (alarm-time fine-grained debugging) ---

TEST(LiveQueries, GetPathsLiveSeesUnEvictedRecords) {
  Topology topo = BuildFatTree(4);
  Network net(&topo, NetworkConfig{});
  AgentFleet fleet(&topo, &net.codec());
  fleet.AttachTo(net);
  HostId src = topo.hosts().front();
  HostId dst = topo.hosts().back();
  EdgeAgent& agent = fleet.agent(dst);

  // A long-running flow: no FIN, not yet idle -> not in the TIB.
  FiveTuple flow = testutil::MakeFlow(topo, src, dst);
  for (uint32_t seq = 0; seq < 5; ++seq) {
    Packet p;
    p.flow = flow;
    p.src_host = src;
    p.dst_host = dst;
    p.seq = seq;
    net.InjectPacket(p, SimTime(seq) * kNsPerMs);
  }
  net.events().RunAll();

  LinkId any{kInvalidNode, kInvalidNode};
  EXPECT_TRUE(agent.GetPaths(flow, any, TimeRange::All()).empty())
      << "record should still be live, not in the TIB";
  auto live = agent.GetPathsLive(flow, any, TimeRange::All());
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].size(), 5u);
  EXPECT_EQ(live[0].front(), topo.TorOfHost(src));

  // Link filter applies to live paths too.
  EXPECT_TRUE(agent.GetPathsLive(flow, LinkId{live[0][1], live[0][0]}, TimeRange::All())
                  .empty());

  // After eviction the same path comes from the TIB, without duplicates.
  agent.FlushAll(net.events().now());
  auto after = agent.GetPathsLive(flow, any, TimeRange::All());
  EXPECT_EQ(after.size(), 1u);
}

// --- Installable TCP monitor (the §2.3 monitoring query) ---

TEST(PoorTcpMonitor, AlarmsOncePerEpisode) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgent agent(topo.hosts().back(), &topo, &codec);
  std::vector<Alarm> alarms;
  agent.SetAlarmHandler([&](const Alarm& a) { alarms.push_back(a); });
  agent.InstallPoorTcpMonitor(200 * kNsPerMs, 3);

  FiveTuple flow{1, 2, 3, 4, kProtoTcp};
  for (int i = 0; i < 5; ++i) {
    agent.RecordRetransmission(flow, SimTime(i));
  }
  agent.Tick(200 * kNsPerMs);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].reason, AlarmReason::kPoorPerf);

  // Next poll without new retransmissions: silent.
  agent.Tick(400 * kNsPerMs);
  EXPECT_EQ(alarms.size(), 1u);

  // A new episode alarms again.
  for (int i = 0; i < 3; ++i) {
    agent.RecordRetransmission(flow, 500 * kNsPerMs + SimTime(i));
  }
  agent.Tick(600 * kNsPerMs);
  EXPECT_EQ(alarms.size(), 2u);
}

// --- Agent robustness: malformed trajectory headers ---

TEST(AgentRobustness, OverLongTagStacksAlarmNotCrash) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgent agent(topo.hosts().back(), &topo, &codec);
  int alarms = 0;
  agent.SetAlarmHandler([&](const Alarm&) { ++alarms; });

  Packet p;
  p.flow = testutil::MakeFlow(topo, topo.hosts().front(), topo.hosts().back());
  p.fin = true;
  p.tags = {1, 2, 3, 4, 5, 6, 7, 8};  // far beyond the ASIC limit
  agent.OnPacket(p, 0);
  agent.FlushAll(kNsPerSec);
  EXPECT_EQ(agent.tib().size(), 0u);
  EXPECT_EQ(alarms, 1);
}

TEST(AgentRobustness, UnknownSourceIpAlarms) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  EdgeAgent agent(topo.hosts().back(), &topo, &codec);
  int alarms = 0;
  agent.SetAlarmHandler([&](const Alarm&) { ++alarms; });

  Packet p;
  p.flow.src_ip = 0xC0A80001;  // 192.168.0.1: not a datacenter host
  p.flow.dst_ip = topo.IpOfHost(topo.hosts().back());
  p.flow.protocol = kProtoTcp;
  p.fin = true;
  p.tags = {0};
  agent.OnPacket(p, 0);
  agent.FlushAll(kNsPerSec);
  EXPECT_EQ(agent.tib().size(), 0u);
  EXPECT_EQ(alarms, 1);
}

}  // namespace
}  // namespace pathdump
