#include <gtest/gtest.h>

#include "src/apps/blackhole.h"
#include "src/apps/load_imbalance.h"
#include "src/apps/max_coverage.h"
#include "src/apps/outcast_diagnosis.h"
#include "src/apps/path_conformance.h"
#include "src/apps/silent_drop.h"
#include "src/apps/traffic_measure.h"
#include "src/fluidsim/fluid.h"
#include "src/topology/fat_tree.h"
#include "src/workload/flow_size.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- MAX-COVERAGE ---

TEST(MaxCoverageTest, SingleFaultExactlyLocalized) {
  MaxCoverageLocalizer loc;
  // Three flows through the same faulty link (2->3), different elsewhere.
  loc.AddSignature({1, 2, 3, 4});
  loc.AddSignature({7, 2, 3, 9});
  loc.AddSignature({8, 2, 3, 5});
  auto hyp = loc.Localize();
  ASSERT_EQ(hyp.size(), 1u);
  EXPECT_EQ(hyp[0], (LinkId{2, 3}));
  auto acc = MaxCoverageLocalizer::Evaluate(hyp, {{2, 3}});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_TRUE(acc.Perfect());
}

TEST(MaxCoverageTest, TwoFaultsNeedTwoLinks) {
  MaxCoverageLocalizer loc;
  loc.AddSignature({1, 2, 9});   // fault on 1->2
  loc.AddSignature({1, 2, 8});
  loc.AddSignature({5, 6, 7});   // fault on 6->7
  loc.AddSignature({4, 6, 7});
  auto hyp = loc.Localize();
  EXPECT_EQ(hyp.size(), 2u);
  auto acc = MaxCoverageLocalizer::Evaluate(hyp, {{1, 2}, {6, 7}});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
}

TEST(MaxCoverageTest, FewSignaturesGiveImperfectPrecision) {
  MaxCoverageLocalizer loc;
  // One signature: greedy picks one link of the path — 1/1 chance it is
  // wrong if the fault was elsewhere on the path.
  loc.AddSignature({1, 2, 3});
  auto hyp = loc.Localize();
  EXPECT_EQ(hyp.size(), 1u);
  auto acc = MaxCoverageLocalizer::Evaluate(hyp, {{2, 3}});
  // recall + precision are either 0 or 1 here, but the hypothesis may miss.
  EXPECT_LE(acc.recall, 1.0);
}

TEST(MaxCoverageTest, EmptyAndClear) {
  MaxCoverageLocalizer loc;
  EXPECT_TRUE(loc.Localize().empty());
  loc.AddSignature({1, 2});
  EXPECT_EQ(loc.signature_count(), 1u);
  loc.Clear();
  EXPECT_EQ(loc.signature_count(), 0u);
  // Single-switch paths produce no links and are ignored.
  loc.AddSignature({5});
  EXPECT_EQ(loc.signature_count(), 0u);
}

TEST(MaxCoverageTest, EvaluateEdgeCases) {
  auto acc = MaxCoverageLocalizer::Evaluate({}, {});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  acc = MaxCoverageLocalizer::Evaluate({{1, 2}}, {});
  EXPECT_DOUBLE_EQ(acc.precision, 0.0);
  acc = MaxCoverageLocalizer::Evaluate({}, {{1, 2}});
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
  EXPECT_DOUBLE_EQ(acc.precision, 0.0);
}

// --- Conformance / isolation ---

class ConformanceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    labels_ = std::make_unique<LinkLabelMap>(&topo_);
    codec_ = std::make_unique<CherryPickCodec>(&topo_, labels_.get());
    agent_ = std::make_unique<EdgeAgent>(topo_.hosts().back(), &topo_, codec_.get());
    agent_->SetAlarmHandler([this](const Alarm& a) { alarms_.push_back(a); });
  }

  TibRecord Record(Path path) {
    TibRecord r;
    r.flow = testutil::MakeFlow(topo_, topo_.hosts().front(), topo_.hosts().back());
    r.path = CompactPath::FromPath(path);
    r.stime = 0;
    r.etime = 100;
    r.bytes = 1000;
    r.pkts = 1;
    return r;
  }

  Topology topo_;
  std::unique_ptr<LinkLabelMap> labels_;
  std::unique_ptr<CherryPickCodec> codec_;
  std::unique_ptr<EdgeAgent> agent_;
  std::vector<Alarm> alarms_;
};

TEST_F(ConformanceFixture, PolicyPredicate) {
  ConformancePolicy policy;
  policy.max_path_switches = 6;
  policy.forbidden = {42};
  policy.required_waypoints = {7};
  EXPECT_TRUE(policy.Check({1, 7, 3}));
  EXPECT_FALSE(policy.Check({1, 2, 3}));          // waypoint missing
  EXPECT_FALSE(policy.Check({1, 7, 42}));         // forbidden switch
  EXPECT_FALSE(policy.Check({1, 7, 3, 4, 5, 6})); // too long
}

TEST_F(ConformanceFixture, ViolationRaisesPcFail) {
  ConformancePolicy policy;
  policy.max_path_switches = 6;  // 6+ switches violate (paper's example)
  InstallPathConformance(*agent_, policy);

  agent_->IngestRecord(Record({1, 2, 3, 4, 5}), 0);  // 5 switches: fine
  EXPECT_TRUE(alarms_.empty());
  agent_->IngestRecord(Record({1, 2, 3, 4, 5, 6, 7}), 0);  // 7: violation
  ASSERT_EQ(alarms_.size(), 1u);
  EXPECT_EQ(alarms_[0].reason, AlarmReason::kPathConformance);
  ASSERT_EQ(alarms_[0].paths.size(), 1u);
  EXPECT_EQ(alarms_[0].paths[0].size(), 7u);
}

TEST_F(ConformanceFixture, IsolationViolationDetected) {
  IpAddr src_ip = topo_.IpOfHost(topo_.hosts().front());
  IpAddr dst_ip = topo_.IpOfHost(topo_.hosts().back());
  InstallIsolationCheck(*agent_, {src_ip}, {dst_ip});
  agent_->IngestRecord(Record({1, 2, 3}), 0);
  ASSERT_EQ(alarms_.size(), 1u);
  EXPECT_EQ(alarms_[0].reason, AlarmReason::kPathConformance);
}

// --- Blackhole diagnosis (paper §4.4 numbers) ---

class BlackholeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_ = BuildFatTree(4);
    router_ = std::make_unique<Router>(&topo_);
    labels_ = std::make_unique<LinkLabelMap>(&topo_);
    codec_ = std::make_unique<CherryPickCodec>(&topo_, labels_.get());
    const FatTreeMeta& m = *topo_.fat_tree();
    src_ = topo_.HostsOfTor(m.tor[0][0])[0];
    dst_ = topo_.HostsOfTor(m.tor[1][0])[0];
    agent_ = std::make_unique<EdgeAgent>(dst_, &topo_, codec_.get());
    flow_ = testutil::MakeFlow(topo_, src_, dst_);
  }

  void IngestPaths(const std::vector<Path>& paths) {
    for (const Path& p : paths) {
      TibRecord r;
      r.flow = flow_;
      r.path = CompactPath::FromPath(p);
      r.stime = 0;
      r.etime = 100;
      r.bytes = 25000;
      r.pkts = 17;
      agent_->IngestRecord(r, 100);
    }
  }

  Topology topo_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<LinkLabelMap> labels_;
  std::unique_ptr<CherryPickCodec> codec_;
  HostId src_, dst_;
  std::unique_ptr<EdgeAgent> agent_;
  FiveTuple flow_;
};

TEST_F(BlackholeFixture, AggCoreBlackholeYieldsThreeCandidates) {
  std::vector<Path> all = router_->EcmpPaths(src_, dst_);
  ASSERT_EQ(all.size(), 4u);
  // Blackhole on the agg->core link of path 0: that subflow vanishes.
  std::vector<Path> observed(all.begin() + 1, all.end());
  IngestPaths(observed);

  BlackholeDiagnosis d =
      DiagnoseBlackhole(*router_, *agent_, flow_, src_, dst_, TimeRange::All());
  ASSERT_EQ(d.missing.size(), 1u);
  EXPECT_EQ(d.missing[0], all[0]);
  // Paper: three candidate switches (src agg, core, dst agg) out of 10.
  EXPECT_EQ(d.candidates.size(), 3u);
  // The refined set drops switches seen on healthy paths: only the core
  // of the dead path is unique to it.
  ASSERT_EQ(d.refined_candidates.size(), 1u);
  EXPECT_EQ(topo_.RoleOf(d.refined_candidates[0]), NodeRole::kCore);
}

TEST_F(BlackholeFixture, TorAggBlackholeYieldsFourCommonSwitches) {
  std::vector<Path> all = router_->EcmpPaths(src_, dst_);
  // ToR->agg0 blackhole kills both subflows via agg index 0 (paths sharing
  // all[0][1]).
  NodeId agg0 = all[0][1];
  std::vector<Path> observed;
  for (const Path& p : all) {
    if (p[1] != agg0) {
      observed.push_back(p);
    }
  }
  ASSERT_EQ(observed.size(), 2u);
  IngestPaths(observed);

  BlackholeDiagnosis d =
      DiagnoseBlackhole(*router_, *agent_, flow_, src_, dst_, TimeRange::All());
  EXPECT_EQ(d.missing.size(), 2u);
  // Paper: four common switches (srcToR, srcAgg, dstAgg, dstToR).
  EXPECT_EQ(d.candidates.size(), 4u);
}

TEST_F(BlackholeFixture, HealthyFlowHasNoMissingPaths) {
  IngestPaths(router_->EcmpPaths(src_, dst_));
  BlackholeDiagnosis d =
      DiagnoseBlackhole(*router_, *agent_, flow_, src_, dst_, TimeRange::All());
  EXPECT_TRUE(d.missing.empty());
  EXPECT_TRUE(d.candidates.empty());
}

// --- Outcast diagnosis ---

TEST(OutcastDiagnosisTest, DetectsOutcastProfile) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId receiver = topo.HostsOfTor(m.tor[0][0])[0];
  EdgeAgent agent(receiver, &topo, &codec);
  OutcastDiagnoser diag(/*min_alerts=*/3, /*unfairness=*/2.0);

  // Victim: same-rack sender, 1-switch path, tiny byte count.
  HostId victim = topo.HostsOfTor(m.tor[0][0])[1];
  FiveTuple victim_flow = testutil::MakeFlow(topo, victim, receiver, 30001);
  TibRecord vr;
  vr.flow = victim_flow;
  vr.path = CompactPath::FromPath({m.tor[0][0]});
  vr.stime = 0;
  vr.etime = 10 * kNsPerSec;
  vr.bytes = 1000000;  // ~0.8 Mbps over 10 s
  vr.pkts = 700;
  agent.IngestRecord(vr, vr.etime);

  // Far senders: 5-switch paths, healthy throughput.
  int port = 30002;
  std::vector<Alarm> alarms;
  for (int i = 0; i < 4; ++i) {
    HostId far = topo.HostsOfTor(m.tor[1][i % 2])[i / 2];
    FiveTuple f = testutil::MakeFlow(topo, far, receiver, uint16_t(port++));
    TibRecord r;
    r.flow = f;
    Path p = Router(&topo).EcmpPaths(far, receiver)[0];
    r.path = CompactPath::FromPath(p);
    r.stime = 0;
    r.etime = 10 * kNsPerSec;
    r.bytes = 50000000;  // ~40 Mbps
    r.pkts = 35000;
    agent.IngestRecord(r, r.etime);
  }

  // Alarms from 3 distinct sources to the receiver trigger diagnosis.
  Alarm a;
  a.reason = AlarmReason::kPoorPerf;
  a.flow = victim_flow;
  EXPECT_FALSE(diag.OnAlarm(a));
  a.flow.src_ip = topo.IpOfHost(topo.HostsOfTor(m.tor[1][0])[0]);
  EXPECT_FALSE(diag.OnAlarm(a));
  a.flow.src_ip = topo.IpOfHost(topo.HostsOfTor(m.tor[1][1])[0]);
  EXPECT_TRUE(diag.OnAlarm(a));
  EXPECT_EQ(diag.AlertCountFor(a.flow.dst_ip), 3);

  OutcastVerdict v = diag.Diagnose(agent, TimeRange::All(), 10.0);
  EXPECT_TRUE(v.is_outcast);
  EXPECT_EQ(v.victim.flow, victim_flow);
  EXPECT_EQ(v.victim.path_switches, 1);
  EXPECT_GT(v.unfairness, 2.0);
  EXPECT_EQ(v.path_tree.at(1), 1);
  EXPECT_EQ(v.path_tree.at(5), 4);
}

TEST(OutcastDiagnosisTest, FairTrafficIsNotOutcast) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  const FatTreeMeta& m = *topo.fat_tree();
  HostId receiver = topo.HostsOfTor(m.tor[0][0])[0];
  EdgeAgent agent(receiver, &topo, &codec);
  Router router(&topo);

  int port = 30001;
  for (int i = 0; i < 5; ++i) {
    HostId far = topo.HostsOfTor(m.tor[1][i % 2])[i / 2 % 2];
    FiveTuple f = testutil::MakeFlow(topo, far, receiver, uint16_t(port++));
    TibRecord r;
    r.flow = f;
    r.path = CompactPath::FromPath(router.EcmpPaths(far, receiver)[0]);
    r.stime = 0;
    r.etime = 10 * kNsPerSec;
    r.bytes = 50000000;
    r.pkts = 35000;
    agent.IngestRecord(r, r.etime);
  }
  OutcastDiagnoser diag(1, 2.0);
  OutcastVerdict v = diag.Diagnose(agent, TimeRange::All(), 10.0);
  EXPECT_FALSE(v.is_outcast);
}

// --- Traffic measurement + silent drop end-to-end over fluid engine ---

TEST(SilentDropAppTest, LocalizesFaultyLinksFromAlarms) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  fleet.SetAlarmHandler(controller.MakeAlarmSink());

  SilentDropDebugger debugger(&controller, &fleet);
  debugger.Start();

  // Fault: one agg->core interface drops 2% silently.
  const FatTreeMeta& m = *topo.fat_tree();
  NodeId agg = m.agg[0][0];
  NodeId core = m.core[0];
  FluidConfig fcfg;
  fcfg.seed = 3;
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.AddSilentDrop(agg, core, 0.02);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 30;
  params.duration = 30 * kNsPerSec;
  params.seed = 12;
  auto flows = gen.Generate(params);
  ASSERT_GT(flows.size(), 1000u);

  AlarmHandler sink = controller.MakeAlarmSink();
  auto stats = fluid.Run(flows, &fleet, sink);
  EXPECT_GT(stats.alarms, 0u);
  EXPECT_GT(debugger.signature_count(), 0u);

  auto acc = debugger.Accuracy({{agg, core}});
  EXPECT_DOUBLE_EQ(acc.recall, 1.0) << "the faulty link must be implicated";
}

TEST(TrafficMeasureTest, TopKTrafficMatrixHeavyHittersDdos) {
  Topology topo = BuildFatTree(4);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  Controller controller;
  controller.RegisterFleet(fleet);
  Router router(&topo);

  HostId victim = topo.hosts().back();
  // 5 sources send to the victim with distinct sizes.
  for (int i = 0; i < 5; ++i) {
    HostId src = topo.hosts()[size_t(i)];
    TibRecord r;
    r.flow = testutil::MakeFlow(topo, src, victim, uint16_t(40000 + i));
    r.path = CompactPath::FromPath(router.EcmpPaths(src, victim)[0]);
    r.stime = 0;
    r.etime = kNsPerSec;
    r.bytes = uint64_t(i + 1) * 100000;
    r.pkts = 100;
    fleet.agent(victim).IngestRecord(r, r.etime);
  }

  TopKFlows top = TopKAcrossHosts(controller, controller.registered_hosts(), 3,
                                  TimeRange::All(), /*multi_level=*/true);
  ASSERT_EQ(top.items.size(), 3u);
  EXPECT_EQ(top.items[0].first, 500000u);

  auto matrix = TrafficMatrix(fleet, TimeRange::All());
  EXPECT_FALSE(matrix.empty());
  uint64_t total = 0;
  for (auto& [key, bytes] : matrix) {
    total += bytes;
  }
  EXPECT_EQ(total, 1500000u);

  auto hh = HeavyHitters(controller, controller.registered_hosts(), 400000, TimeRange::All());
  ASSERT_EQ(hh.size(), 2u);

  auto ddos = DdosSources(fleet.agent(victim), TimeRange::All());
  ASSERT_EQ(ddos.size(), 5u);
  EXPECT_EQ(ddos[0].first, 500000u);

  auto congested = CongestedLinkFlows(controller, controller.registered_hosts(),
                                      LinkId{kInvalidNode, topo.TorOfHost(victim)},
                                      TimeRange::All());
  EXPECT_EQ(congested.size(), 5u);
  EXPECT_GE(congested[0].first, congested.back().first);
}

}  // namespace
}  // namespace pathdump
