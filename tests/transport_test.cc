// Transport subsystem tests (PR 6 tentpole):
//
//  1. SPSC ring unit contract — wraparound round-trips, full-ring
//     backpressure (TryPush refusal + blocked Push accounting), forged
//     sequence numbers surfacing as counted gaps, structural corruption
//     poisoning the ring instead of desynchronizing it.
//  2. Threaded producer/consumer stress (the TSan target for the ring's
//     acquire/release protocol).
//  3. Segment lifecycle — create/open/unlink, plus the test-teardown
//     sweep that keeps /dev/shm clean.
//  4. Backend-parametrized determinism — the standing-query poll-identity
//     matrix (all four kinds, {1,4,16} shards x {1,4,16} workers) run
//     over BOTH TransportOptions backends: the in-process path unchanged,
//     and the shared-memory path with every agent behind a real ring
//     (threaded here; tests/transport_multiproc_test.cc forks processes).
//  5. Reactor resilience — malformed frames on a live ring are counted
//     by category and the stream recovers; sequence gaps surface in
//     TransportStats.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/transport/shm_ring.h"
#include "src/transport/transport.h"
#include "src/transport/wire.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

using transport::DecodedFrame;
using transport::FrameType;
using transport::ShmAgentClient;
using transport::ShmSegment;
using transport::ShmSpscRing;
using transport::TransportHub;
using transport::TransportOptions;
using transport::TransportStats;

using Backend = TransportOptions::Backend;

// Every segment this suite creates carries this pid-scoped prefix; the
// environment teardown below sweeps it so no /dev/shm entry survives
// even a crashed or failed run.
std::string TestShmPrefix() { return "/pathdump.test." + std::to_string(getpid()) + "."; }

class ShmCleanupEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { transport::CleanupShmByPrefix(TestShmPrefix()); }
};
const auto* const kCleanupEnv =
    ::testing::AddGlobalTestEnvironment(new ShmCleanupEnvironment());

// 64-byte-aligned heap memory: the ring control block is cache-line
// aligned, so plain heap tests must honor the same alignment mmap gives.
struct AlignedBuf {
  explicit AlignedBuf(size_t n)
      : size((n + 63) & ~size_t(63)), mem(std::aligned_alloc(64, size)) {
    std::memset(mem, 0, size);
  }
  ~AlignedBuf() { std::free(mem); }
  size_t size;
  void* mem;
};

// --- 1. Ring unit contract ---

TEST(ShmRing, RoundTripAcrossWraparound) {
  // 8 slots of 64 bytes: multi-slot messages wrap the physical end of
  // the slot array every few pushes.
  AlignedBuf buf(ShmSpscRing::BytesFor(64, 8));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 64, 8);
  ASSERT_TRUE(ring.valid());
  EXPECT_EQ(ring.max_message_bytes(), 64u * 7 - 16);

  std::vector<uint8_t> out;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> msg(size_t(1 + (i * 37) % 300), uint8_t(i));
    ASSERT_TRUE(ring.Push(msg.data(), msg.size(), 1'000'000)) << "push " << i;
    ASSERT_TRUE(ring.Pop(out)) << "pop " << i;
    EXPECT_EQ(out, msg) << "message " << i;
  }
  EXPECT_EQ(ring.messages_popped(), 500u);
  EXPECT_EQ(ring.seq_gaps(), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(ShmRing, QueuedMessagesKeepOrder) {
  AlignedBuf buf(ShmSpscRing::BytesFor(64, 32));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 64, 32);
  std::vector<std::vector<uint8_t>> expect;
  std::vector<uint8_t> out;
  for (int round = 0; round < 100; ++round) {
    for (int j = 0; j < 3; ++j) {
      std::vector<uint8_t> msg(size_t(5 + (round * 3 + j) % 90), uint8_t(round + j));
      ASSERT_TRUE(ring.Push(msg.data(), msg.size(), 1'000'000));
      expect.push_back(std::move(msg));
    }
    for (int j = 0; j < 3; ++j) {
      ASSERT_TRUE(ring.Pop(out));
      EXPECT_EQ(out, expect[size_t(round * 3 + j)]);
    }
  }
}

TEST(ShmRing, FullRingBackpressure) {
  AlignedBuf buf(ShmSpscRing::BytesFor(64, 8));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 64, 8);
  // 100-byte messages need ceil(116/64) = 2 slots; four of them fill
  // the 8-slot ring exactly.
  std::vector<uint8_t> msg(100, 0xAB);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(msg.data(), msg.size())) << i;
  }
  EXPECT_FALSE(ring.TryPush(msg.data(), msg.size()));
  // A blocking push against a full ring times out — and is counted.
  EXPECT_FALSE(ring.Push(msg.data(), msg.size(), 20'000));
  EXPECT_GE(ring.blocked_pushes(), 1u);
  // Space frees exactly at pop granularity.
  std::vector<uint8_t> out;
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_TRUE(ring.TryPush(msg.data(), msg.size()));
  // Oversized messages are refused outright, full or not.
  std::vector<uint8_t> huge(ring.max_message_bytes() + 1, 0);
  EXPECT_FALSE(ring.Push(huge.data(), huge.size(), 1'000'000));
}

TEST(ShmRing, ForgedSequenceSurfacesAsCountedGap) {
  AlignedBuf buf(ShmSpscRing::BytesFor(64, 16));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 64, 16);
  std::vector<uint8_t> msg{1, 2, 3};
  std::vector<uint8_t> out;
  ASSERT_TRUE(ring.TryPush(msg.data(), msg.size()));  // seq 0
  ASSERT_TRUE(ring.Pop(out));                         // expected_seq -> 1
  ring.set_next_seq(10);                              // simulate lost 1..9
  ASSERT_TRUE(ring.TryPush(msg.data(), msg.size()));  // seq 10
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_EQ(ring.seq_gaps(), 9u);
  // The gap is counted once; the stream then continues normally.
  ASSERT_TRUE(ring.TryPush(msg.data(), msg.size()));  // seq 11
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_EQ(ring.seq_gaps(), 9u);
  EXPECT_FALSE(ring.corrupt());
}

TEST(ShmRing, StructuralCorruptionPoisonsInsteadOfDesyncing) {
  AlignedBuf buf(ShmSpscRing::BytesFor(64, 8));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 64, 8);
  std::vector<uint8_t> msg(40, 0x55);
  ASSERT_TRUE(ring.TryPush(msg.data(), msg.size()));
  // Stomp the message header's length field (bytes 8..11 of slot 0).
  // BytesFor = aligned control block + slot bytes, so the slot array
  // starts at BytesFor - slot_bytes * slot_count.
  uint8_t* slots = static_cast<uint8_t*>(buf.mem) + ShmSpscRing::BytesFor(64, 8) - 64 * 8;
  const uint32_t bogus = 0xFFFFFFFFu;
  std::memcpy(slots + 8, &bogus, 4);
  std::vector<uint8_t> out;
  EXPECT_FALSE(ring.Pop(out));
  EXPECT_TRUE(ring.corrupt());
  // Poisoned for good: even a fresh valid push is unreachable.
  ASSERT_TRUE(ring.TryPush(msg.data(), msg.size()));
  EXPECT_FALSE(ring.Pop(out));
}

// --- 2. Threaded SPSC stress (TSan target) ---

TEST(ShmRing, ThreadedProducerConsumerStress) {
  // A deliberately small ring so the producer hits backpressure and the
  // consumer hits empty, exercising both doorbells under race.
  AlignedBuf buf(ShmSpscRing::BytesFor(128, 64));
  ShmSpscRing ring = ShmSpscRing::CreateAt(buf.mem, 128, 64);
  const int kMessages = 4000;

  auto payload = [](int i) {
    std::vector<uint8_t> msg(size_t(1 + (i * 131) % 1000));
    for (size_t j = 0; j < msg.size(); ++j) {
      msg[j] = uint8_t(i + int(j));
    }
    return msg;
  };

  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<uint8_t> msg = payload(i);
      ASSERT_TRUE(ring.Push(msg.data(), msg.size(), 30'000'000)) << i;
    }
    ring.CloseProducer();
  });

  std::vector<uint8_t> out;
  int received = 0;
  while (received < kMessages) {
    if (!ring.Pop(out)) {
      ring.WaitForData(1'000'000);
      continue;
    }
    ASSERT_EQ(out, payload(received)) << "message " << received;
    ++received;
  }
  producer.join();
  EXPECT_EQ(ring.messages_popped(), uint64_t(kMessages));
  EXPECT_EQ(ring.seq_gaps(), 0u);
  EXPECT_TRUE(ring.closed());
}

// --- 3. Segment lifecycle ---

TEST(ShmSegmentTest, CreateOpenRoundTripAndUnlink) {
  const std::string name = TestShmPrefix() + "seg";
  ShmSegment::Geometry geo;
  geo.data_slot_count = 1 << 6;
  geo.cmd_slot_count = 1 << 4;
  auto creator = ShmSegment::Create(name, geo);
  ASSERT_NE(creator, nullptr);
  // Exclusive creation: a second Create of the live name fails.
  EXPECT_EQ(ShmSegment::Create(name, geo), nullptr);

  auto opener = ShmSegment::Open(name);
  ASSERT_NE(opener, nullptr);
  // Opener produces into its own mapping; creator consumes from its own
  // — same physical ring.
  std::vector<uint8_t> msg{9, 8, 7, 6};
  ASSERT_TRUE(opener->data_ring().TryPush(msg.data(), msg.size()));
  std::vector<uint8_t> out;
  ASSERT_TRUE(creator->data_ring().Pop(out));
  EXPECT_EQ(out, msg);
  // And the reverse direction over the command ring.
  std::vector<uint8_t> cmd{1, 1, 2, 3, 5};
  ASSERT_TRUE(creator->cmd_ring().TryPush(cmd.data(), cmd.size()));
  ASSERT_TRUE(opener->cmd_ring().Pop(out));
  EXPECT_EQ(out, cmd);

  // The creator owns the name: once it dies, the name is gone even
  // though the opener's mapping stays valid.
  creator.reset();
  EXPECT_EQ(ShmSegment::Open(name), nullptr);
  ASSERT_TRUE(opener->cmd_ring().empty());
}

TEST(ShmSegmentTest, CleanupSweepRemovesLeftoverNames) {
  const std::string name = TestShmPrefix() + "leftover";
  auto creator = ShmSegment::Create(name, ShmSegment::Geometry{64, 1 << 4, 64, 1 << 4});
  ASSERT_NE(creator, nullptr);
  ASSERT_NE(ShmSegment::Open(name), nullptr);
  // The sweep a failed test run relies on: name removed while the
  // creator still holds its mapping.
  transport::CleanupShmByPrefix(TestShmPrefix());
  EXPECT_EQ(ShmSegment::Open(name), nullptr);
  creator->Unlink();  // idempotent after the sweep
}

// --- 4. Backend-parametrized standing-query determinism matrix ---

constexpr uint32_t kIpSpace = 2048;
constexpr uint32_t kSwitchSpace = 24;
constexpr size_t kTopK = 500;
constexpr int64_t kBinWidth = 10000;
const LinkId kProbeLink{3, 7};

StandingQuerySpec SpecTopK() {
  StandingQuerySpec s;
  s.kind = StandingQuerySpec::Kind::kTopK;
  s.k = kTopK;
  return s;
}
StandingQuerySpec SpecHistogram() {
  StandingQuerySpec s;
  s.kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  s.bin_width = kBinWidth;
  s.link = kProbeLink;
  return s;
}
StandingQuerySpec SpecFlowList() {
  StandingQuerySpec s;
  s.kind = StandingQuerySpec::Kind::kFlowList;
  s.link = kProbeLink;
  return s;
}
StandingQuerySpec SpecCount() {
  StandingQuerySpec s;
  s.kind = StandingQuerySpec::Kind::kCountSummary;
  s.link = kProbeLink;
  return s;
}

Controller::QueryFn PollFor(const StandingQuerySpec& spec) {
  switch (spec.kind) {
    case StandingQuerySpec::Kind::kTopK:
      return [](EdgeAgent& a) -> QueryResult { return a.TopK(kTopK, TimeRange::All()); };
    case StandingQuerySpec::Kind::kFlowSizeHistogram:
      return [](EdgeAgent& a) -> QueryResult {
        return a.FlowSizeDistribution(kProbeLink, TimeRange::All(), kBinWidth);
      };
    case StandingQuerySpec::Kind::kFlowList:
      return [](EdgeAgent& a) -> QueryResult {
        return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
      };
    case StandingQuerySpec::Kind::kCountSummary:
    default:
      return [](EdgeAgent& a) -> QueryResult {
        return a.CountOnLink(kProbeLink, TimeRange::All());
      };
  }
}

// In-process stand-in for examples/agent_worker.cpp: the same command
// loop, one thread per agent, speaking real frames over real rings.
// `fault` (if any()) installs a seeded data-plane fault injector on the
// client, with the usual per-host seed offset.
class ShmAgentThread {
 public:
  ShmAgentThread(std::string name, HostId host, size_t shards, const Topology* topo,
                 const CherryPickCodec* codec,
                 transport::FaultInjectorConfig fault = {}) {
    thread_ = std::thread([name = std::move(name), host, shards, topo, codec, fault] {
      auto client = ShmAgentClient::Open(name);
      if (client == nullptr) {
        ADD_FAILURE() << "cannot map " << name;
        return;
      }
      if (fault.any()) {
        transport::FaultInjectorConfig cfg = fault;
        cfg.seed += host;
        client->SetFaultInjector(cfg);
      }
      EdgeAgentConfig cfg;
      cfg.tib_options.num_shards = shards;
      EdgeAgent agent(host, topo, codec, cfg);
      agent.SetAlarmHandler(client->MakeAlarmSink());
      client->SendHello(host);
      for (;;) {
        DecodedFrame cmd;
        if (!client->PollCommand(&cmd, 100'000)) {
          continue;
        }
        switch (cmd.type) {
          case FrameType::kSubscribe:
            agent.RegisterStandingQuery(cmd.subscription_id, cmd.spec,
                                        client->MakeDeltaSink());
            break;
          case FrameType::kIngest: {
            testutil::SyntheticRecordOptions opt;
            opt.ip_space = cmd.ingest_ip_space;
            opt.switch_space = cmd.ingest_switch_space;
            for (const TibRecord& rec : testutil::MakeSyntheticRecords(
                     int(cmd.ingest_count), cmd.ingest_seed + uint32_t(host), opt)) {
              agent.tib().Insert(rec);
            }
            break;
          }
          case FrameType::kEpochTick:
            agent.EpochTick();
            client->SendAck(host, cmd.token);
            break;
          case FrameType::kResyncRequest:
            agent.ResyncStandingQuery(cmd.subscription_id);
            break;
          case FrameType::kShutdown:
            client->SendBye(host);
            return;
          default:
            break;
        }
      }
    });
  }
  ~ShmAgentThread() { thread_.join(); }

 private:
  std::thread thread_;
};

// One backend-selected testbed.  The controller's registered agents are
// the poll reference ("twins"); on the in-process backend they are also
// the standing-query agents, on the shm backend the standing agents live
// behind rings (ShmAgentThread) and ingest identical records derived
// from the shared (seed + host) convention.
struct TransportTestbed {
  Topology topo;
  LinkLabelMap labels;
  CherryPickCodec codec;
  Controller controller;
  // Destruction order is load-bearing: threads exit first (Shutdown is
  // sent in the destructor body), then the hub joins its reactor, then
  // the manager detaches its in-process accumulators while the twins
  // are still alive, then the twins die.
  std::vector<std::unique_ptr<EdgeAgent>> twins;
  SubscriptionManager manager;
  TransportHub hub;
  std::vector<std::unique_ptr<ShmAgentThread>> threads;
  std::vector<HostId> hosts;
  Backend backend;

  static TransportOptions MakeOptions(Backend b) {
    TransportOptions o;
    o.backend = b;
    o.shm_prefix = TestShmPrefix();
    return o;
  }

  TransportTestbed(Backend b, size_t num_agents, size_t shards,
                   SubscriptionManagerOptions mopts = {},
                   transport::FaultInjectorConfig fault = {})
      : topo(BuildFatTree(4)),
        labels(&topo),
        codec(&topo, &labels),
        manager(&controller, mopts),
        hub(&controller, &manager, MakeOptions(b)),
        backend(b) {
    for (size_t a = 0; a < num_agents; ++a) {
      HostId h = topo.hosts()[a];
      hosts.push_back(h);
      EdgeAgentConfig cfg;
      cfg.tib_options.num_shards = shards;
      twins.push_back(std::make_unique<EdgeAgent>(h, &topo, &codec, cfg));
      if (b == Backend::kInProcess) {
        hub.AddLocalAgent(twins.back().get());
      } else {
        controller.RegisterAgent(twins.back().get());
        std::string name = hub.AddShmPeer(h);
        EXPECT_FALSE(name.empty());
        threads.push_back(
            std::make_unique<ShmAgentThread>(name, h, shards, &topo, &codec, fault));
      }
    }
    if (b == Backend::kSharedMemory) {
      EXPECT_TRUE(hub.WaitForHellos(10'000'000));
    }
  }

  // Recovery quiesce: flush, then wait until no stream is stale and no
  // gap is still buffered — i.e. every loss has been resynced and every
  // reorder resolved.  Only then is byte-identity meaningful.
  bool Quiesce(const std::vector<uint64_t>& subs, int64_t timeout_us) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
    for (;;) {
      hub.Flush();
      bool settled = manager.stale_streams() == 0;
      for (uint64_t id : subs) {
        settled = settled && manager.info(id).pending_gaps == 0;
      }
      if (settled) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~TransportTestbed() {
    hub.SendShutdown();
    threads.clear();  // joins; workers exit on the Shutdown frame
  }

  // One epoch's records everywhere: the twins ingest directly; shm
  // agents get the broadcast Ingest and derive the identical stream.
  void Ingest(uint32_t count, uint32_t seed) {
    testutil::SyntheticRecordOptions opt;
    opt.ip_space = kIpSpace;
    opt.switch_space = kSwitchSpace;
    for (auto& twin : twins) {
      for (const TibRecord& rec :
           testutil::MakeSyntheticRecords(int(count), seed + uint32_t(twin->host()), opt)) {
        twin->tib().Insert(rec);
      }
    }
    if (backend == Backend::kSharedMemory) {
      hub.SendIngest(count, seed, kIpSpace, kSwitchSpace);
    }
  }

  // Epoch boundary, synchronized: tick, wait for every agent's ack,
  // drain the rings, flush the fold.
  void Epoch() {
    const uint64_t token = hub.SendEpochTick();
    ASSERT_TRUE(hub.WaitForAcks(token, 30'000'000));
    hub.Flush();
  }
};

class TransportBackendTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, TransportBackendTest,
                         ::testing::Values(Backend::kInProcess, Backend::kSharedMemory),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kInProcess ? "InProcess"
                                                                    : "SharedMemory";
                         });

TEST_P(TransportBackendTest, StandingMatrixMatchesPollAcrossShardWorkerMatrix) {
  const int kPerEpoch = 1200;
  const int kEpochs = 3;
  const size_t kAgents = 3;
  const std::vector<StandingQuerySpec> kSpecs = {SpecTopK(), SpecHistogram(), SpecFlowList(),
                                                 SpecCount()};

  for (size_t shards : {size_t(1), size_t(4), size_t(16)}) {
    TransportTestbed tb(GetParam(), kAgents, shards);
    std::vector<uint64_t> subs;
    for (const StandingQuerySpec& spec : kSpecs) {
      subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
    }
    const MetricsSnapshot metrics_before = MetricsRegistry::Global().Snapshot();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      tb.Ingest(uint32_t(kPerEpoch), 0xA100u * uint32_t(epoch + 1) + uint32_t(shards));
      tb.Epoch();
      if (::testing::Test::HasFatalFailure()) {
        return;
      }

      // At the boundary, every standing kind must equal a fresh poll
      // over the twins, at every worker count.
      for (size_t workers : {size_t(1), size_t(4), size_t(16)}) {
        tb.controller.SetWorkerThreads(workers);
        ThreadPool scan_pool(workers);
        for (auto& twin : tb.twins) {
          twin->SetQueryThreadPool(workers > 1 ? &scan_pool : nullptr);
        }
        for (size_t s = 0; s < kSpecs.size(); ++s) {
          auto [poll, stats] = tb.controller.Execute(tb.hosts, PollFor(kSpecs[s]));
          QueryResult standing = tb.manager.Materialize(subs[s]);
          EXPECT_EQ(standing, poll)
              << "backend "
              << (GetParam() == Backend::kInProcess ? "inproc" : "shm") << ", kind " << s
              << ", " << shards << " shards, " << workers << " workers, epoch " << epoch;
        }
        for (auto& twin : tb.twins) {
          twin->SetQueryThreadPool(nullptr);
        }
      }
      tb.controller.SetWorkerThreads(1);
    }

    // Registry accounting holds on both backends (shm agents are threads
    // of this process, so both sides of the ring land in one registry):
    // every delta the agents produced was folded — none orphaned, none
    // lost in transit.  Diffed, not absolute: other tests in this binary
    // share the process-wide registry.
    {
      const MetricsSnapshot md = MetricsRegistry::Global().Snapshot().Diff(metrics_before);
      auto counter = [&md](const char* name) {
        auto it = md.counters.find(name);
        return it == md.counters.end() ? uint64_t(0) : it->second;
      };
      const uint64_t produced = counter("standing.deltas_produced");
      EXPECT_GT(produced, 0u);
      EXPECT_EQ(produced, counter("sub.deltas_folded") + counter("sub.deltas_orphaned"));
      EXPECT_EQ(counter("sub.deltas_orphaned"), 0u);
      if (GetParam() == Backend::kSharedMemory) {
        // Every produced delta was wire-encoded, pushed onto a ring, and
        // popped by the reactor exactly once.
        EXPECT_EQ(counter("wire.frames_encoded"), produced);
        EXPECT_EQ(counter("ring.delta_pushes"), produced);
        EXPECT_EQ(counter("transport.deltas"), produced);
        EXPECT_EQ(counter("transport.decode_errors"), 0u);
      }
    }

    if (GetParam() == Backend::kSharedMemory) {
      // Transport accounting: every frame decoded, nothing corrupted.
      TransportStats st = tb.hub.stats();
      EXPECT_EQ(st.peers, kAgents);
      EXPECT_EQ(st.peers_hello, kAgents);
      EXPECT_EQ(st.peers_dead, 0u);
      EXPECT_EQ(st.decode_errors, 0u);
      EXPECT_EQ(st.seq_gaps, 0u);
      EXPECT_GT(st.deltas, 0u);
      EXPECT_EQ(st.acks, uint64_t(kEpochs) * kAgents);
      // Folded deltas arrived via the rings, not via any in-process
      // attachment.
      EXPECT_GE(tb.manager.stats().deltas_folded, uint64_t(kEpochs));
    }
  }
}

// --- 5. Reactor resilience ---

TEST(TransportHubErrors, MalformedFramesAreCountedAndStreamRecovers) {
  Controller controller;
  SubscriptionManager manager(&controller);
  TransportHub hub(&controller, &manager, TransportTestbed::MakeOptions(Backend::kSharedMemory));
  const HostId kHost = 42;
  const std::string name = hub.AddShmPeer(kHost);
  ASSERT_FALSE(name.empty());
  auto client = ShmAgentClient::Open(name);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->SendHello(kHost));
  ASSERT_TRUE(hub.WaitForHellos(10'000'000));

  ShmSpscRing& ring = client->segment().data_ring();
  // Not a frame at all.
  std::vector<uint8_t> junk(32, 0xEE);
  ASSERT_TRUE(ring.Push(junk.data(), junk.size(), 1'000'000));
  // A well-formed frame with one payload bit flipped: CRC must catch it.
  std::vector<uint8_t> flipped;
  transport::EncodeAckFrame(kHost, 7, flipped);
  flipped[transport::kFrameHeaderBytes + 2] ^= 0x10;
  ASSERT_TRUE(ring.Push(flipped.data(), flipped.size(), 1'000'000));
  // A valid frame after the garbage: the stream must recover.
  ASSERT_TRUE(client->SendAck(kHost, 9));

  // The reactor acks tokens monotonically; once 9 lands, everything
  // before it has been classified.
  ASSERT_TRUE(hub.WaitForAcks(9, 10'000'000));
  TransportStats st = hub.stats();
  EXPECT_EQ(st.bad_magic, 1u);
  EXPECT_EQ(st.bad_checksum, 1u);
  EXPECT_EQ(st.decode_errors, 2u);
  EXPECT_EQ(st.acks, 1u);  // the corrupted ack never counted
  EXPECT_EQ(st.peers_dead, 0u);
}

// --- 6. Seeded fault-injection matrix ---
//
// One fault kind per run, seeded (deterministic), over the full
// standing-kind set.  Each run proves three things: (a) byte-identity
// with a fresh poll still holds at every epoch boundary once the
// recovery machinery quiesces, (b) every injected fault is visible in
// exactly the counter that fault kind must land in, and (c) no faulted
// frame is ever folded — submitted == folded + orphaned +
// stale_discarded stays exact.

struct FaultCase {
  const char* label;
  transport::FaultInjectorConfig cfg;
  size_t gap_resync_threshold;
  bool expect_resync;   // lost data -> stale streams + snapshot folds
  bool expect_orphans;  // duplicates surface as orphaned deltas
};

TEST(TransportFaultMatrix, EveryFaultKindIsCountedAndNeverFolded) {
  const int kPerEpoch = 600;
  const int kEpochs = 8;
  const size_t kAgents = 3;
  const std::vector<StandingQuerySpec> kSpecs = {SpecTopK(), SpecHistogram(), SpecFlowList(),
                                                 SpecCount()};

  std::vector<FaultCase> cases;
  {
    // ~12% per data frame over 8 epochs x 4 subs x 3 agents = 96 draws
    // per run: enough injections to be meaningful, deterministic by
    // seed either way.
    transport::FaultInjectorConfig drop;
    drop.seed = 0x20260808;
    drop.drop_per_10k = 1200;
    // Threshold 1: the first buffered out-of-order epoch declares the
    // stream stale, so a loss landing in the shadow of an in-flight
    // snapshot still re-triggers recovery instead of pending forever.
    cases.push_back({"drop", drop, 1, /*expect_resync=*/true, /*expect_orphans=*/false});

    transport::FaultInjectorConfig corrupt;
    corrupt.seed = 0x20260808;
    corrupt.corrupt_per_10k = 1200;
    cases.push_back({"corrupt", corrupt, 1, /*expect_resync=*/true, /*expect_orphans=*/false});

    // Delay is pure reordering — at threshold 4 (a one-frame stash can
    // buffer at most one epoch per stream) recovery must NOT trigger;
    // the gap buffer alone absorbs it.
    transport::FaultInjectorConfig delay;
    delay.seed = 0x20260808;
    delay.delay_per_10k = 2000;
    cases.push_back({"delay", delay, 4, /*expect_resync=*/false, /*expect_orphans=*/false});

    transport::FaultInjectorConfig dup;
    dup.seed = 0x20260808;
    dup.dup_per_10k = 1200;
    cases.push_back({"dup", dup, 1, /*expect_resync=*/false, /*expect_orphans=*/true});
  }

  for (const FaultCase& fc : cases) {
    SCOPED_TRACE(fc.label);
    SubscriptionManagerOptions mopts;
    mopts.gap_resync_threshold = fc.gap_resync_threshold;
    TransportTestbed tb(Backend::kSharedMemory, kAgents, 4, mopts, fc.cfg);
    std::vector<uint64_t> subs;
    for (const StandingQuerySpec& spec : kSpecs) {
      subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
    }
    const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      tb.Ingest(uint32_t(kPerEpoch), 0xFA00u * uint32_t(epoch + 1));
      tb.Epoch();
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      // Let every triggered resync complete (request -> snapshot ->
      // fold) before comparing against the poll reference.
      ASSERT_TRUE(tb.Quiesce(subs, 20'000'000)) << "epoch " << epoch;
      for (size_t s = 0; s < kSpecs.size(); ++s) {
        auto [poll, stats] = tb.controller.Execute(tb.hosts, PollFor(kSpecs[s]));
        QueryResult standing = tb.manager.Materialize(subs[s]);
        EXPECT_EQ(standing, poll) << "kind " << s << ", epoch " << epoch;
      }
    }

    const MetricsSnapshot md = MetricsRegistry::Global().Snapshot().Diff(before);
    auto counter = [&md](const char* name) {
      auto it = md.counters.find(name);
      return it == md.counters.end() ? uint64_t(0) : it->second;
    };
    const uint64_t drops = counter("fault.injected_drop");
    const uint64_t corrupts = counter("fault.injected_corrupt");
    const uint64_t delays = counter("fault.injected_delay");
    const uint64_t dups = counter("fault.injected_dup");
    // Exactly the configured kind fired (seeded, so deterministically
    // nonzero at these rates).
    EXPECT_EQ(drops > 0, fc.cfg.drop_per_10k > 0);
    EXPECT_EQ(corrupts > 0, fc.cfg.corrupt_per_10k > 0);
    EXPECT_EQ(delays > 0, fc.cfg.delay_per_10k > 0);
    EXPECT_EQ(dups > 0, fc.cfg.dup_per_10k > 0);

    // Each fault kind lands in exactly its transport-level signature:
    // a drop consumes a sequence number (counted gap), a corruption
    // fails the CRC (bad_checksum), delay and dup do neither.
    const TransportStats st = tb.hub.stats();
    EXPECT_EQ(st.seq_gaps, drops);
    EXPECT_EQ(st.bad_checksum, corrupts);
    EXPECT_EQ(st.peers_dead, 0u);

    const SubscriptionManagerStats ss = tb.manager.stats();
    EXPECT_EQ(ss.deltas_submitted,
              ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);
    if (fc.expect_resync) {
      EXPECT_GT(ss.resyncs, 0u);
      EXPECT_GT(ss.snapshot_folds, 0u);
      EXPECT_GT(st.resync_requests, 0u);
      EXPECT_GT(st.snapshots, 0u);
    } else {
      EXPECT_EQ(ss.resyncs, 0u);
      EXPECT_EQ(ss.snapshot_folds, 0u);
    }
    if (fc.expect_orphans) {
      // Both copies of a duplicated frame decode; the second fold is a
      // duplicate epoch — orphaned, never folded twice.
      EXPECT_EQ(ss.deltas_orphaned, dups);
    } else {
      EXPECT_EQ(ss.deltas_orphaned, 0u);
    }
  }
}

TEST(TransportHubErrors, SequenceGapsSurfaceInStats) {
  Controller controller;
  SubscriptionManager manager(&controller);
  TransportHub hub(&controller, &manager, TransportTestbed::MakeOptions(Backend::kSharedMemory));
  const HostId kHost = 7;
  const std::string name = hub.AddShmPeer(kHost);
  ASSERT_FALSE(name.empty());
  auto client = ShmAgentClient::Open(name);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->SendHello(kHost));  // seq 0
  ASSERT_TRUE(client->SendAck(kHost, 1));  // seq 1
  // Simulate upstream loss of 5 messages, then resume.
  client->segment().data_ring().set_next_seq(7);
  ASSERT_TRUE(client->SendAck(kHost, 2));  // seq 7; expected was 2
  ASSERT_TRUE(hub.WaitForAcks(2, 10'000'000));
  TransportStats st = hub.stats();
  EXPECT_EQ(st.seq_gaps, 5u);
  EXPECT_EQ(st.decode_errors, 0u);
}

}  // namespace
}  // namespace pathdump
