// Property-based suites: system-wide invariants checked across sweeps of
// topology sizes, load-balancing modes, tag sequences, and tree shapes.

#include <gtest/gtest.h>

#include <set>

#include "src/cherrypick/codec.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/edge/fleet.h"
#include "src/fluidsim/fluid.h"
#include "src/netsim/network.h"
#include "src/tcp/segmenter.h"
#include "src/topology/fat_tree.h"
#include "src/topology/vl2.h"
#include "src/workload/flow_size.h"
#include "src/workload/traffic_gen.h"
#include "tests/test_util.h"

namespace pathdump {
namespace {

// --- Decode(Encode(path)) == path for every packet the network delivers,
// across topology kinds and load-balancing modes. ---

struct PipelineParam {
  TopologyKind kind;
  LoadBalanceMode mode;
};

class DecodeEquivalence : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(DecodeEquivalence, EveryDeliveredPacketDecodesToItsTrace) {
  PipelineParam param = GetParam();
  Topology topo = param.kind == TopologyKind::kFatTree ? BuildFatTree(4)
                                                       : BuildVl2(8, 4, 3, 2);
  NetworkConfig cfg;
  cfg.lb_mode = param.mode;
  Network net(&topo, cfg);

  uint64_t checked = 0;
  net.SetDefaultSink([&](const Packet& pkt, SimTime) {
    auto decoded = net.codec().Decode(pkt.src_host, pkt.dst_host, pkt.dscp, pkt.tags);
    ASSERT_TRUE(decoded.has_value())
        << "undecodable: " << PathToString(pkt.trace) << " tags=" << pkt.tags.size();
    ASSERT_EQ(*decoded, pkt.trace);
    ++checked;
  });

  // All-pairs, several packets per pair so spraying explores paths.
  int port = 10000;
  for (HostId src : topo.hosts()) {
    for (HostId dst : topo.hosts()) {
      if (src == dst) {
        continue;
      }
      for (int i = 0; i < (param.mode == LoadBalanceMode::kPacketSpray ? 6 : 1); ++i) {
        Packet p;
        p.flow = testutil::MakeFlow(topo, src, dst, uint16_t(port++));
        p.src_host = src;
        p.dst_host = dst;
        net.InjectPacket(p, 0);
      }
    }
  }
  net.events().RunAll();
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_GT(checked, 200u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndModes, DecodeEquivalence,
    ::testing::Values(PipelineParam{TopologyKind::kFatTree, LoadBalanceMode::kEcmpHash},
                      PipelineParam{TopologyKind::kFatTree, LoadBalanceMode::kPacketSpray},
                      PipelineParam{TopologyKind::kVl2, LoadBalanceMode::kEcmpHash},
                      PipelineParam{TopologyKind::kVl2, LoadBalanceMode::kPacketSpray}));

// --- Decoder fuzz: arbitrary tag sequences must never crash and must only
// accept trajectories that are feasible w.r.t. the topology. ---

class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, RandomTagsEitherRejectOrYieldFeasiblePath) {
  int k = GetParam();
  Topology topo = BuildFatTree(k);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Rng rng(uint64_t(k) * 31 + 7);

  const auto& hosts = topo.hosts();
  int accepted = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    HostId src = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    HostId dst = hosts[rng.UniformInt(uint32_t(hosts.size()))];
    if (src == dst) {
      continue;
    }
    std::vector<LinkLabel> tags;
    uint32_t n = rng.UniformInt(4);
    for (uint32_t i = 0; i < n; ++i) {
      tags.push_back(LinkLabel(rng.UniformInt(kMaxVlanLabel + 2)));
    }
    auto decoded = codec.Decode(src, dst, 0, tags);
    if (!decoded) {
      continue;
    }
    ++accepted;
    // Feasibility: endpoints are the hosts' ToRs, consecutive switches are
    // adjacent, and re-encoding the decoded path yields exactly the tags.
    ASSERT_FALSE(decoded->empty());
    EXPECT_EQ(decoded->front(), topo.TorOfHost(src));
    EXPECT_EQ(decoded->back(), topo.TorOfHost(dst));
    for (size_t i = 0; i + 1 < decoded->size(); ++i) {
      EXPECT_TRUE(topo.Adjacent((*decoded)[i], (*decoded)[i + 1]))
          << PathToString(*decoded);
    }
    auto [re_dscp, re_tags] = testutil::EncodeAlongPath(codec, src, dst, *decoded);
    EXPECT_EQ(re_tags, tags) << "decode accepted tags the encoder would not produce for "
                             << PathToString(*decoded);
  }
  // Random tags are overwhelmingly infeasible, but some valid ones occur.
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Ks, DecoderFuzz, ::testing::Values(4, 6, 8));

// --- Fluid engine and per-packet engine agree on ECMP path selection and
// byte accounting for identical flow sets. ---

TEST(FluidVsNetsim, SameFlowsSamePathsSameBytes) {
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);

  WebSearchFlowSizes sizes;
  TrafficGenerator gen(&topo, &sizes);
  TrafficParams params;
  params.flows_per_sec_per_host = 3;
  params.duration = kNsPerSec / 2;
  params.seed = 99;
  auto flows = gen.Generate(params);
  ASSERT_GT(flows.size(), 15u);

  // Per-packet run.
  NetworkConfig cfg;
  Network net(&topo, cfg);
  AgentFleet packet_fleet(&topo, &net.codec());
  packet_fleet.AttachTo(net);
  for (const FlowDesc& f : flows) {
    SimTime t = f.start;
    for (Packet& p : SegmentFlow(f.tuple, f.src, f.dst, f.bytes)) {
      net.InjectPacket(p, t);
      t += kNsPerUs;
    }
  }
  net.events().RunAll();
  packet_fleet.FlushAll(net.events().now());

  // Fluid run.
  FluidConfig fcfg;
  AgentFleet fluid_fleet(&topo, &codec);
  FluidSimulation fluid(&topo, &router, fcfg);
  fluid.Run(flows, &fluid_fleet, nullptr);

  for (const FlowDesc& f : flows) {
    LinkId any{kInvalidNode, kInvalidNode};
    auto packet_paths = packet_fleet.agent(f.dst).GetPaths(f.tuple, any, TimeRange::All());
    auto fluid_paths = fluid_fleet.agent(f.dst).GetPaths(f.tuple, any, TimeRange::All());
    ASSERT_EQ(packet_paths.size(), 1u) << FlowToString(f.tuple);
    ASSERT_EQ(fluid_paths.size(), 1u);
    EXPECT_EQ(packet_paths[0], fluid_paths[0])
        << "engines disagree on the ECMP path for " << FlowToString(f.tuple);

    CountSummary pc = packet_fleet.agent(f.dst).GetCount(Flow{f.tuple, {}}, TimeRange::All());
    CountSummary fc = fluid_fleet.agent(f.dst).GetCount(Flow{f.tuple, {}}, TimeRange::All());
    // Packet engine pads sub-64B tails; tolerate that delta.
    EXPECT_NEAR(double(pc.bytes), double(fc.bytes), 128.0);
    EXPECT_EQ(pc.pkts, fc.pkts);
  }
}

// --- Multi-level queries must equal direct queries for every tree shape. ---

struct TreeShape {
  int hosts;
  int top;
  int fanout;
};

class TreeShapeSweep : public ::testing::TestWithParam<TreeShape> {};

TEST_P(TreeShapeSweep, MultiLevelMatchesDirect) {
  TreeShape shape = GetParam();
  Topology topo = BuildFatTree(8);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  Router router(&topo);
  AgentFleet fleet(&topo, &codec);
  Controller controller;

  Rng rng(uint64_t(shape.hosts) * 31 + uint64_t(shape.fanout));
  std::vector<HostId> hosts;
  for (int i = 0; i < shape.hosts; ++i) {
    HostId h = topo.hosts()[size_t(i)];
    hosts.push_back(h);
    controller.RegisterAgent(&fleet.agent(h));
    // A few random records per host.
    for (int r = 0; r < 20; ++r) {
      HostId src = topo.hosts()[rng.UniformInt(uint32_t(topo.hosts().size()))];
      if (src == h) {
        continue;
      }
      TibRecord rec;
      rec.flow = testutil::MakeFlow(topo, src, h, uint16_t(1000 + r));
      rec.path = CompactPath::FromPath(router.EcmpPaths(src, h)[0]);
      rec.stime = 0;
      rec.etime = kNsPerSec;
      rec.bytes = 1000 + rng.UniformInt(1000000);
      rec.pkts = 10;
      fleet.agent(h).IngestRecord(rec, rec.etime);
    }
  }

  // Tree well-formedness.
  AggregationTree tree = BuildAggregationTree(hosts, shape.top, shape.fanout);
  EXPECT_EQ(tree.size(), hosts.size());
  std::set<HostId> seen;
  for (const AggregationNode& n : tree.nodes) {
    EXPECT_TRUE(seen.insert(n.host).second);
    EXPECT_LE(int(n.children.size()), std::max(shape.fanout, shape.top));
  }

  Controller::QueryFn query = [](EdgeAgent& a) -> QueryResult {
    return a.TopK(7, TimeRange::All());
  };
  auto [dres, ds] = controller.Execute(hosts, query);
  auto [mres, ms] = controller.ExecuteMultiLevel(hosts, query, shape.top, shape.fanout);
  auto dt = std::get<TopKFlows>(dres);
  auto mt = std::get<TopKFlows>(mres);
  dt.k = 7;
  mt.k = 7;
  dt.Finalize();
  mt.Finalize();
  ASSERT_EQ(dt.items.size(), mt.items.size());
  for (size_t i = 0; i < dt.items.size(); ++i) {
    EXPECT_EQ(dt.items[i].first, mt.items[i].first) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeShapeSweep,
                         ::testing::Values(TreeShape{1, 7, 4}, TreeShape{7, 7, 4},
                                           TreeShape{8, 7, 4}, TreeShape{30, 7, 4},
                                           TreeShape{30, 2, 2}, TreeShape{30, 1, 1},
                                           TreeShape{64, 3, 9}, TreeShape{64, 16, 2}));

// --- Spray fairness: multinomial subflow split stays near-uniform. ---

class SpraySizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpraySizes, SubflowBytesNearUniform) {
  uint64_t bytes = GetParam();
  Topology topo = BuildFatTree(4);
  Router router(&topo);
  LinkLabelMap labels(&topo);
  CherryPickCodec codec(&topo, &labels);
  AgentFleet fleet(&topo, &codec);
  FluidConfig cfg;
  cfg.lb_mode = LoadBalanceMode::kPacketSpray;
  FluidSimulation fluid(&topo, &router, cfg);

  FlowDesc f;
  f.src = topo.hosts().front();
  f.dst = topo.hosts().back();
  f.bytes = bytes;
  f.tuple = testutil::MakeFlow(topo, f.src, f.dst);
  fluid.Run({f}, &fleet, nullptr);

  auto& tib = fleet.agent(f.dst).tib();
  ASSERT_EQ(tib.size(), 4u);
  uint64_t total = 0;
  for (const TibRecord& rec : tib.records()) {
    EXPECT_NEAR(double(rec.bytes), double(bytes) / 4.0, double(bytes) / 4.0 * 0.05 + 256);
    total += rec.bytes;
  }
  EXPECT_NEAR(double(total), double(bytes), double(bytes) * 0.02 + 512);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpraySizes,
                         ::testing::Values(100000ull, 1000000ull, 10000000ull, 100000000ull));

// --- TimeRange filtering boundary sweep over the TIB. ---

class TimeRangeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimeRangeSweep, OverlapSemantics) {
  // Record lives [100, 200].  Parameter selects a probe range; expected
  // containment follows the closed-record/half-open-range rule.
  struct Probe {
    TimeRange range;
    bool hit;
  };
  const Probe probes[] = {
      {{0, 50}, false},   {{0, 100}, false},  {{0, 101}, true},  {{150, 160}, true},
      {{200, 300}, true}, {{201, 300}, false}, {{0, kSimTimeMax}, true},
  };
  const Probe& probe = probes[size_t(GetParam())];

  Tib tib;
  TibRecord rec;
  rec.flow = FiveTuple{1, 2, 3, 4, 6};
  rec.path = CompactPath::FromPath({1, 2, 3});
  rec.stime = 100;
  rec.etime = 200;
  rec.bytes = 10;
  rec.pkts = 1;
  tib.Insert(rec);
  EXPECT_EQ(tib.RecordsOfFlow(rec.flow, probe.range).size(), probe.hit ? 1u : 0u);
  EXPECT_EQ(tib.RecordsOnLink(LinkId{1, 2}, probe.range).size(), probe.hit ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(Probes, TimeRangeSweep, ::testing::Range(0, 7));

// --- Trajectory memory aggregation is exact under random packet orders. ---

TEST(TrajectoryMemoryProperty, ByteAndPacketConservation) {
  Rng rng(5);
  TrajectoryMemory mem(kSimTimeMax);  // no idle eviction during the test
  uint64_t expect_bytes = 0;
  uint32_t expect_pkts = 0;
  for (int i = 0; i < 10000; ++i) {
    Packet p;
    p.flow = FiveTuple{1, 2, uint16_t(rng.UniformInt(50)), 80, 6};
    p.size_bytes = 64 + rng.UniformInt(1400);
    if (rng.Bernoulli(0.5)) {
      p.tags.push_back(LinkLabel(rng.UniformInt(16)));
    }
    expect_bytes += p.size_bytes;
    expect_pkts += 1;
    mem.OnPacket(p, SimTime(i));
  }
  uint64_t got_bytes = 0;
  uint32_t got_pkts = 0;
  mem.Flush([&](const TrajectoryMemory::Record& r) {
    got_bytes += r.bytes;
    got_pkts += r.pkts;
  });
  EXPECT_EQ(got_bytes, expect_bytes);
  EXPECT_EQ(got_pkts, expect_pkts);
}

}  // namespace
}  // namespace pathdump
