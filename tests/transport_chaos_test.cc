// Chaos soak: SIGKILL forked agents mid-subscription, restart them, and
// assert FULL recovery — not just survival.
//
// Each round ingests into the whole fleet, ticks an epoch, quiesces the
// recovery machinery, and asserts the materialized standing result is
// byte-identical to a fresh poll over the in-test twins — for all four
// standing kinds.  On kill rounds a seeded RNG picks a victim: it is
// SIGKILLed and reaped, the hub detects the death, RestartPeer retires
// the old segment and arms the rejoin window, a fresh worker process is
// forked with the bumped incarnation number, and the rejoin handshake
// re-subscribes + snapshot-resyncs every covering stream.  The victim's
// twin is reset to a fresh EdgeAgent (its records died with it), so the
// poll reference tracks exactly what a recovered system must report.
//
// Seed comes from PATHDUMP_CHAOS_SEED (fixed default) so CI runs are
// reproducible; PATHDUMP_CHAOS_METRICS_OUT=<path> dumps the final
// process-wide metrics registry as JSON (the CI chaos step uploads it
// as the recovery-metrics artifact).
//
// Labeled `multiproc;chaos` in CTest: the CI chaos step runs `ctest -L
// chaos`; the plain multiproc step excludes it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/controller/subscription.h"
#include "src/edge/tib.h"
#include "src/topology/fat_tree.h"
#include "src/topology/link_labels.h"
#include "src/transport/shm_ring.h"
#include "src/transport/transport.h"
#include "tests/test_util.h"

#ifndef AGENT_WORKER_PATH
#error "AGENT_WORKER_PATH must point at the agent_worker example binary"
#endif

namespace pathdump {
namespace {

using transport::PeerState;
using transport::TransportHub;
using transport::TransportOptions;
using transport::TransportStats;

std::string TestShmPrefix() { return "/pathdump.chaos." + std::to_string(getpid()) + "."; }

class ShmCleanupEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { transport::CleanupShmByPrefix(TestShmPrefix()); }
};
const auto* const kCleanupEnv =
    ::testing::AddGlobalTestEnvironment(new ShmCleanupEnvironment());

constexpr uint32_t kIpSpace = 2048;
constexpr uint32_t kSwitchSpace = 24;
constexpr size_t kShards = 4;
constexpr size_t kTopK = 300;
constexpr int64_t kBinWidth = 10000;
const LinkId kProbeLink{3, 7};

uint64_t ChaosSeed() {
  const char* env = std::getenv("PATHDUMP_CHAOS_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC4A05;
}

std::vector<StandingQuerySpec> AllSpecs() {
  std::vector<StandingQuerySpec> specs(4);
  specs[0].kind = StandingQuerySpec::Kind::kTopK;
  specs[0].k = kTopK;
  specs[1].kind = StandingQuerySpec::Kind::kFlowSizeHistogram;
  specs[1].bin_width = kBinWidth;
  specs[1].link = kProbeLink;
  specs[2].kind = StandingQuerySpec::Kind::kFlowList;
  specs[2].link = kProbeLink;
  specs[3].kind = StandingQuerySpec::Kind::kCountSummary;
  specs[3].link = kProbeLink;
  return specs;
}

Controller::QueryFn PollFor(const StandingQuerySpec& spec) {
  switch (spec.kind) {
    case StandingQuerySpec::Kind::kTopK:
      return [](EdgeAgent& a) -> QueryResult { return a.TopK(kTopK, TimeRange::All()); };
    case StandingQuerySpec::Kind::kFlowSizeHistogram:
      return [](EdgeAgent& a) -> QueryResult {
        return a.FlowSizeDistribution(kProbeLink, TimeRange::All(), kBinWidth);
      };
    case StandingQuerySpec::Kind::kFlowList:
      return [](EdgeAgent& a) -> QueryResult {
        return FlowList{a.GetFlows(kProbeLink, TimeRange::All())};
      };
    case StandingQuerySpec::Kind::kCountSummary:
    default:
      return [](EdgeAgent& a) -> QueryResult {
        return a.CountOnLink(kProbeLink, TimeRange::All());
      };
  }
}

pid_t ForkWorker(const std::string& shm_name, HostId host, uint32_t incarnation) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(AGENT_WORKER_PATH, "agent_worker", shm_name.c_str(),
          std::to_string(host).c_str(), std::to_string(kShards).c_str(),
          std::to_string(incarnation).c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

int ReapWithDeadline(pid_t pid, int64_t timeout_us) {
  const int64_t step_us = 20'000;
  int status = -1;
  for (int64_t waited = 0; waited <= timeout_us; waited += step_us) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return status;
    }
    if (r < 0) {
      return -1;
    }
    timespec ts{0, step_us * 1000};
    nanosleep(&ts, nullptr);
  }
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
  return status;
}

struct ChaosTestbed {
  Topology topo;
  LinkLabelMap labels;
  CherryPickCodec codec;
  Controller controller;
  std::vector<std::unique_ptr<EdgeAgent>> twins;
  SubscriptionManager manager;
  TransportHub hub;
  std::vector<HostId> hosts;
  std::vector<pid_t> pids;
  // TIB memory ceiling applied to the in-test twins.  The forked
  // workers read the same value from PATHDUMP_TIB_MAX_BYTES (set by the
  // eviction-interplay test before the testbed forks them), so both
  // sides retire the same epochs in lockstep.
  size_t tib_max_bytes = 0;

  static TransportOptions MakeOptions() {
    TransportOptions o;
    o.backend = TransportOptions::Backend::kSharedMemory;
    o.shm_prefix = TestShmPrefix();
    return o;
  }
  static SubscriptionManagerOptions MakeManagerOptions() {
    SubscriptionManagerOptions o;
    // Any buffered out-of-order epoch declares the stream stale
    // immediately: a loss that lands while a snapshot is already in
    // flight still re-triggers recovery instead of pending forever.
    o.gap_resync_threshold = 1;
    return o;
  }

  explicit ChaosTestbed(size_t num_agents, size_t max_bytes = 0)
      : topo(BuildFatTree(4)),
        labels(&topo),
        codec(&topo, &labels),
        manager(&controller, MakeManagerOptions()),
        hub(&controller, &manager, MakeOptions()) {
    tib_max_bytes = max_bytes;
    for (size_t a = 0; a < num_agents; ++a) {
      HostId h = topo.hosts()[a];
      hosts.push_back(h);
      twins.push_back(MakeTwin(h));
      controller.RegisterAgent(twins.back().get());
      const std::string name = hub.AddShmPeer(h);
      EXPECT_FALSE(name.empty());
      pids.push_back(ForkWorker(name, h, /*incarnation=*/0));
      EXPECT_GT(pids.back(), 0);
    }
  }

  ~ChaosTestbed() {
    hub.SendShutdown();
    for (pid_t pid : pids) {
      if (pid > 0) {
        ReapWithDeadline(pid, 10'000'000);
      }
    }
  }

  std::unique_ptr<EdgeAgent> MakeTwin(HostId h) {
    EdgeAgentConfig cfg;
    cfg.tib_options.num_shards = kShards;
    cfg.tib_options.max_memory_bytes = tib_max_bytes;
    return std::make_unique<EdgeAgent>(h, &topo, &codec, cfg);
  }

  void Ingest(uint32_t count, uint32_t seed) {
    testutil::SyntheticRecordOptions opt;
    opt.ip_space = kIpSpace;
    opt.switch_space = kSwitchSpace;
    for (auto& twin : twins) {
      for (const TibRecord& rec : testutil::MakeSyntheticRecords(
               int(count), seed + uint32_t(twin->host()), opt)) {
        twin->tib().Insert(rec);
      }
    }
    hub.SendIngest(count, seed, kIpSpace, kSwitchSpace);
  }

  void Epoch() {
    const uint64_t token = hub.SendEpochTick();
    ASSERT_TRUE(hub.WaitForAcks(token, 60'000'000));
    // Twins seal in lockstep with the workers (the worker ring is FIFO,
    // so its Ingest precedes its EpochTick exactly as the twin's Insert
    // calls preceded this).  Under a memory ceiling both sides retire
    // the same epochs, keeping the poll reference byte-comparable.
    for (auto& twin : twins) {
      twin->EpochTick();
    }
    hub.Flush();
  }

  // Rebase every stream onto the retained window: stale-mark all
  // sub x host pairs and ship a ResyncRequest for each.  Every request
  // folds exactly one snapshot (snapshots unconditionally replace the
  // stream's baseline), so callers can account folds as
  // subs.size() * hosts.size() per sweep.
  void ForceResyncAll(const std::vector<uint64_t>& subs) {
    for (uint64_t id : subs) {
      for (HostId h : hosts) {
        manager.MarkStale(id, h);
        hub.RequestResync(id, h);
      }
    }
  }

  // Waits until every triggered resync has completed (no stale stream,
  // no buffered gap) — byte-identity is only meaningful afterwards.
  bool Quiesce(const std::vector<uint64_t>& subs, int64_t timeout_us) {
    const int64_t deadline_us = timeout_us;
    for (int64_t waited = 0;; waited += 1000) {
      hub.Flush();
      bool settled = manager.stale_streams() == 0;
      for (uint64_t id : subs) {
        settled = settled && manager.info(id).pending_gaps == 0;
      }
      if (settled) {
        return true;
      }
      if (waited >= deadline_us) {
        return false;
      }
      timespec ts{0, 1'000'000};
      nanosleep(&ts, nullptr);
    }
  }

  void ExpectPollIdentity(const std::vector<StandingQuerySpec>& specs,
                          const std::vector<uint64_t>& subs, const std::string& context) {
    for (size_t s = 0; s < specs.size(); ++s) {
      auto [poll, stats] = controller.Execute(hosts, PollFor(specs[s]));
      QueryResult standing = manager.Materialize(subs[s]);
      EXPECT_EQ(standing, poll) << context << ", kind " << s;
    }
  }

  // SIGKILL agent `v`, wait for the hub to notice, restart it with the
  // next incarnation, and reset its twin (the records died with it).
  void KillAndRestart(size_t v) {
    const HostId h = hosts[v];
    ASSERT_EQ(kill(pids[v], SIGKILL), 0);
    {
      int status = 0;
      ASSERT_EQ(waitpid(pids[v], &status, 0), pids[v]);
      ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
      pids[v] = -1;
    }
    // The reactor detects the dead pid on its next liveness pass.
    for (int64_t waited = 0; hub.peer_state(h) != PeerState::kDead; waited += 1000) {
      ASSERT_LT(waited, 30'000'000) << "hub never detected the death of host " << h;
      timespec ts{0, 1'000'000};
      nanosleep(&ts, nullptr);
    }
    // Fresh twin: the poll reference must model the restarted (empty)
    // agent, or identity post-recovery would be unachievable.
    twins[v] = MakeTwin(h);
    controller.RegisterAgent(twins[v].get());
    const std::string name = hub.RestartPeer(h);
    ASSERT_FALSE(name.empty());
    pids[v] = ForkWorker(name, h, hub.peer_incarnation(h));
    ASSERT_GT(pids[v], 0);
    ASSERT_TRUE(hub.WaitForPeerLive(h, 30'000'000)) << "host " << h << " never rejoined";
  }

  // WaitForPeerLive can return before the rejoin's resync requests are
  // even marked (the reactor flips the state first) — gate on the
  // end-to-end signal: every kill so far produced a full set of
  // snapshot folds.
  void AwaitSnapshotFolds(uint64_t expected_min) {
    for (int64_t waited = 0; manager.stats().snapshot_folds < expected_min;
         waited += 1000) {
      hub.Flush();
      ASSERT_LT(waited, 30'000'000)
          << "only " << manager.stats().snapshot_folds << " snapshot folds, want >= "
          << expected_min;
      timespec ts{0, 1'000'000};
      nanosleep(&ts, nullptr);
    }
  }
};

TEST(TransportChaos, KilledAndRestartedAgentsRecoverToByteIdentity) {
  const size_t kAgents = 3;
  const uint32_t kPerEpoch = 600;
  const int kRounds = 5;
  const uint64_t seed = ChaosSeed();

  ChaosTestbed tb(kAgents);
  ASSERT_TRUE(tb.hub.WaitForHellos(30'000'000)) << "agents never mapped their segments";

  const std::vector<StandingQuerySpec> specs = AllSpecs();
  std::vector<uint64_t> subs;
  for (const StandingQuerySpec& spec : specs) {
    subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
  }

  Rng rng(seed, /*stream=*/0xC4A05u);
  uint64_t kills = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::string ctx = "round " + std::to_string(round);
    tb.Ingest(kPerEpoch, uint32_t(seed) + 0x1000u * uint32_t(round + 1));
    tb.Epoch();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    ASSERT_TRUE(tb.Quiesce(subs, 30'000'000)) << ctx;
    tb.ExpectPollIdentity(specs, subs, ctx);

    // Kill rounds: every odd round loses one seeded victim (the same
    // host can die twice — incarnations keep counting up).
    if (round % 2 == 1) {
      const size_t victim = rng.UniformInt(uint32_t(kAgents));
      tb.KillAndRestart(victim);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      ++kills;
      // One rejoin fires one resync per covering subscription.
      tb.AwaitSnapshotFolds(kills * subs.size());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      ASSERT_TRUE(tb.Quiesce(subs, 30'000'000)) << ctx << " post-restart";
      tb.ExpectPollIdentity(specs, subs, ctx + " post-restart");
    }
  }
  ASSERT_GT(kills, 0u);

  // Full recovery, by the numbers: every kill produced exactly one
  // completed rejoin, nobody is dead or stuck rejoining at the end, the
  // recovery traffic itself was clean, and every submitted delta landed
  // in a terminal accounting bucket with none folded out of order.
  const TransportStats st = tb.hub.stats();
  EXPECT_EQ(st.peers_rejoined, kills);
  EXPECT_EQ(st.peers_dead, 0u);
  EXPECT_EQ(st.peers_rejoining, 0u);
  EXPECT_EQ(st.peers_gave_up, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_GE(st.resync_requests, kills * subs.size());
  EXPECT_GE(st.snapshots, kills * subs.size());

  const SubscriptionManagerStats ss = tb.manager.stats();
  EXPECT_GE(ss.snapshot_folds, kills * subs.size());
  EXPECT_EQ(ss.deltas_orphaned, 0u);
  EXPECT_EQ(ss.deltas_submitted,
            ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);

  // Graceful teardown: the whole fleet — restarted incarnations
  // included — says Bye and exits 0.
  tb.hub.SendShutdown();
  for (pid_t& pid : tb.pids) {
    const int status = ReapWithDeadline(pid, 10'000'000);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << pid << " status " << status;
    pid = -1;
  }

  // CI artifact: the final process-wide registry (recovery counters
  // included) as JSON.
  if (const char* out = std::getenv("PATHDUMP_CHAOS_METRICS_OUT")) {
    if (out[0] != '\0') {
      std::ofstream f(out);
      f << MetricsRegistry::Global().Snapshot().ToJson() << "\n";
    }
  }
}

// Eviction interplay: the same kill/restart chaos, but every TIB —
// forked workers (via PATHDUMP_TIB_MAX_BYTES, inherited across fork)
// and their in-test twins — runs under a memory ceiling sized to ~2.5
// epochs of ingest.  Incremental standing folds stay exact since
// subscribe, but the poll reference forgets retired epochs, so after
// each epoch every stream is force-resynced onto the retained window;
// the materialized standing results must then be byte-identical to a
// fresh poll over the (equally windowed) twins.  Kill rounds prove the
// ISSUE's headline claim: a SIGKILL + restart rejoin still converges to
// byte identity even when the snapshot epoch's predecessors have been
// evicted on the surviving agents.
TEST(TransportChaos, ResyncAfterEvictionYieldsWindowedByteIdentity) {
  const size_t kAgents = 3;
  const uint32_t kPerEpoch = 600;
  const int kRounds = 6;
  const uint64_t seed = ChaosSeed() ^ 0xE71Cu;

  // Price one record with the exact twin/worker TIB options.  Resident
  // accounting is a deterministic count-based function of the build, so
  // a single probe insert yields the same per-record cost the workers
  // will see, and a ceiling derived from it evicts in lockstep on both
  // sides of the fork.
  size_t per_record = 0;
  {
    TibOptions opt;
    opt.num_shards = kShards;
    Tib probe(opt);
    testutil::SyntheticRecordOptions ropt;
    ropt.ip_space = kIpSpace;
    ropt.switch_space = kSwitchSpace;
    probe.Insert(testutil::MakeSyntheticRecords(1, 1, ropt)[0]);
    per_record = probe.bytes_resident();
  }
  ASSERT_GT(per_record, 0u);
  const size_t ceiling = per_record * size_t(kPerEpoch) * 5 / 2;

  // Workers read the ceiling from the environment at startup; set it
  // before the testbed forks them.  KillAndRestart forks replacements
  // later, so the guard clears it only when the test body unwinds.
  struct EnvGuard {
    ~EnvGuard() { unsetenv("PATHDUMP_TIB_MAX_BYTES"); }
  } env_guard;
  setenv("PATHDUMP_TIB_MAX_BYTES", std::to_string(ceiling).c_str(), 1);

  ChaosTestbed tb(kAgents, ceiling);
  ASSERT_TRUE(tb.hub.WaitForHellos(30'000'000)) << "agents never mapped their segments";

  const std::vector<StandingQuerySpec> specs = AllSpecs();
  std::vector<uint64_t> subs;
  for (const StandingQuerySpec& spec : specs) {
    subs.push_back(tb.hub.Subscribe(tb.hosts, spec));
  }

  Rng rng(seed, /*stream=*/0xE71Cu);
  uint64_t kills = 0;
  uint64_t min_total_folds = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::string ctx = "eviction round " + std::to_string(round);
    tb.Ingest(kPerEpoch, uint32_t(seed) + 0x2000u * uint32_t(round + 1));
    tb.Epoch();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    // Kill early (rounds 1 and 2) so even the restarted agents outlive
    // the ~2.5-epoch ceiling and serve later snapshots from a partially
    // evicted TIB — by the final rounds EVERY resync baseline crosses a
    // retirement boundary.
    if (round == 1 || round == 2) {
      const size_t victim = rng.UniformInt(uint32_t(kAgents));
      tb.KillAndRestart(victim);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
      ++kills;
    }

    // Baseline the fold counter at the sweep, not cumulatively: the
    // rejoin's own resync requests fold too, but only when the reactor
    // marks the victim's streams before this sweep stale-marks them
    // (already-stale streams are not re-requested by the rejoin pass) —
    // counting them as guaranteed would race.  The sweep's own
    // subs x hosts snapshots always fold.
    const uint64_t before = tb.manager.stats().snapshot_folds;
    tb.ForceResyncAll(subs);
    tb.AwaitSnapshotFolds(before + subs.size() * tb.hosts.size());
    min_total_folds += subs.size() * tb.hosts.size();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    ASSERT_TRUE(tb.Quiesce(subs, 30'000'000)) << ctx;
    tb.ExpectPollIdentity(specs, subs, ctx);
  }
  ASSERT_EQ(kills, 2u);

  // The interplay is only proven if eviction actually fired everywhere:
  // every twin — the kill victims' replacements included — must have
  // retired whole epochs while staying under the ceiling with exact
  // accounting.
  for (size_t a = 0; a < kAgents; ++a) {
    const TibMemoryStats ms = tb.twins[a]->tib().MemoryStats();
    EXPECT_GT(ms.evicted_records, 0u) << "twin " << a;
    EXPECT_GT(ms.segments_retired, 0u) << "twin " << a;
    EXPECT_LE(ms.resident_bytes, ceiling) << "twin " << a;
    EXPECT_EQ(ms.retained_records, ms.inserted_records - ms.evicted_records)
        << "twin " << a;
    EXPECT_GT(ms.oldest_retained_epoch, 1u) << "twin " << a;
  }

  // Recovery traffic stayed clean and every submitted delta landed in a
  // terminal accounting bucket.
  const TransportStats st = tb.hub.stats();
  EXPECT_EQ(st.peers_rejoined, kills);
  EXPECT_EQ(st.peers_dead, 0u);
  EXPECT_EQ(st.decode_errors, 0u);
  const SubscriptionManagerStats ss = tb.manager.stats();
  EXPECT_GE(ss.snapshot_folds, min_total_folds);
  EXPECT_EQ(ss.deltas_submitted,
            ss.deltas_folded + ss.deltas_orphaned + ss.deltas_stale_discarded);

  // Graceful teardown: the whole fleet exits 0 even though everything
  // they ever resynced was a truncated window.
  tb.hub.SendShutdown();
  for (pid_t& pid : tb.pids) {
    const int status = ReapWithDeadline(pid, 10'000'000);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << pid << " status " << status;
    pid = -1;
  }
}

}  // namespace
}  // namespace pathdump
